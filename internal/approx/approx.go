// Package approx approximates the non-polynomial activation functions of
// the shared ML model by polynomials (paper §IV Step 2 and §V).
//
// LCC's Reed–Solomon decoding only applies to polynomial computations, so
// every occurrence of the activation
//
//	F(x) = (1 - e^(-x)) / (1 + e^(-x)) = tanh(x/2)        (paper eq. 10)
//
// is replaced by a polynomial fit on the working interval [-D, D] fixed by
// the encoding-element selection rule (paper eq. 9). Three methods from
// the paper are implemented — least-squares fitting on k uniform sample
// points (the method the evaluation uses: 21 points on [-2, 2]), Chebyshev
// series truncation, and Taylor expansion — all behind one Method
// interface so experiments can ablate them.
package approx

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/poly"
)

// Activation bundles a scalar nonlinearity with its derivative for
// backpropagation.
type Activation struct {
	// Name identifies the activation in logs and experiment output.
	Name string
	// F is the activation function.
	F func(float64) float64
	// DF is its first derivative.
	DF func(float64) float64
	// Poly holds the polynomial behind F when the activation is an
	// approximation (nil for exact activations). The coded pipelines need
	// the coefficients to evaluate the model in fixed-point field
	// arithmetic.
	Poly poly.Real
}

// SymmetricSigmoid returns the paper's activation (eq. 10):
// F(x) = (1-e^(-x))/(1+e^(-x)) = tanh(x/2), with range (-1, 1).
// Its derivative is (1 - F(x)²)/2.
func SymmetricSigmoid() Activation {
	f := func(x float64) float64 { return math.Tanh(x / 2) }
	return Activation{
		Name: "symmetric-sigmoid",
		F:    f,
		DF: func(x float64) float64 {
			y := f(x)
			return (1 - y*y) / 2
		},
	}
}

// FromPolynomial wraps a polynomial as an Activation, the replacement the
// vehicles install into their local models (paper §IV Step 2).
func FromPolynomial(name string, p poly.Real) Activation {
	dp := p.Derivative()
	return Activation{
		Name: name,
		F:    p.Eval,
		DF:   dp.Eval,
		Poly: p.Clone(),
	}
}

// Method produces a polynomial approximation of f on [lo, hi] with the
// requested degree.
type Method interface {
	// Name identifies the method in experiment output.
	Name() string
	// Fit returns a polynomial of degree ≤ degree approximating f on
	// [lo, hi].
	Fit(f func(float64) float64, lo, hi float64, degree int) (poly.Real, error)
}

// LeastSquares fits by minimising the squared error on SamplePoints
// uniform samples — the paper's method (§VI uses 21 points on [-2, 2]).
type LeastSquares struct {
	// SamplePoints is the number of uniform sample points k; the paper's
	// vehicles choose k by available compute. Must be > degree.
	SamplePoints int
}

// Name implements Method.
func (LeastSquares) Name() string { return "least-squares" }

// Fit implements Method via Householder QR on the Vandermonde system.
func (m LeastSquares) Fit(f func(float64) float64, lo, hi float64, degree int) (poly.Real, error) {
	if err := checkFitArgs(lo, hi, degree); err != nil {
		return nil, err
	}
	k := m.SamplePoints
	if k == 0 {
		k = 21 // the paper's default
	}
	if k <= degree {
		return nil, fmt.Errorf("approx: %d sample points cannot determine degree %d", k, degree)
	}
	xs := make([]float64, k)
	ys := make([]float64, k)
	for i := 0; i < k; i++ {
		xs[i] = lo + (hi-lo)*float64(i)/float64(k-1)
		ys[i] = f(xs[i])
	}
	coef, err := linalg.LeastSquares(linalg.Vandermonde(xs, degree), ys)
	if err != nil {
		return nil, fmt.Errorf("approx: least-squares fit: %w", err)
	}
	return poly.NewReal(coef...), nil
}

// Chebyshev fits by truncating the Chebyshev series computed from
// Chebyshev–Gauss quadrature on [lo, hi] (paper ref. [28]). Near-minimax,
// so its sup-norm error is close to the best achievable at the degree.
type Chebyshev struct {
	// Nodes is the quadrature size (defaults to 64, well above any
	// degree used in the paper).
	Nodes int
}

// Name implements Method.
func (Chebyshev) Name() string { return "chebyshev" }

// Fit implements Method.
func (m Chebyshev) Fit(f func(float64) float64, lo, hi float64, degree int) (poly.Real, error) {
	if err := checkFitArgs(lo, hi, degree); err != nil {
		return nil, err
	}
	n := m.Nodes
	if n == 0 {
		n = 64
	}
	if n <= degree {
		return nil, fmt.Errorf("approx: %d quadrature nodes cannot determine degree %d", n, degree)
	}
	// Chebyshev coefficients c_j = (2/n) Σ_k f(x_k)·cos(j·θ_k) at the
	// Chebyshev–Gauss nodes θ_k = π(k+1/2)/n, x mapped to [lo, hi].
	c := make([]float64, degree+1)
	for k := 0; k < n; k++ {
		theta := math.Pi * (float64(k) + 0.5) / float64(n)
		x := (lo+hi)/2 + (hi-lo)/2*math.Cos(theta)
		fx := f(x)
		for j := 0; j <= degree; j++ {
			c[j] += fx * math.Cos(float64(j)*theta)
		}
	}
	for j := range c {
		c[j] *= 2 / float64(n)
	}
	c[0] /= 2

	// Convert the truncated series Σ c_j·T_j(t), t = (2x-lo-hi)/(hi-lo),
	// to monomial coefficients in x via the T recurrence.
	t := poly.NewReal(-(lo+hi)/(hi-lo), 2/(hi-lo))
	tPrev := poly.NewReal(1) // T_0
	tCur := t                // T_1
	out := tPrev.Scale(c[0])
	if degree >= 1 {
		out = out.Add(tCur.Scale(c[1]))
	}
	for j := 2; j <= degree; j++ {
		tNext := t.Scale(2).Mul(tCur).Sub(tPrev)
		out = out.Add(tNext.Scale(c[j]))
		tPrev, tCur = tCur, tNext
	}
	return out, nil
}

// Taylor expands the paper's activation tanh(x/2) around zero
// (paper ref. [27]). Unlike the other methods it ignores f and the
// interval beyond validation: the series is analytic, accurate near the
// origin, and degrades toward the interval ends — exactly the behaviour
// the paper discusses when motivating input normalisation.
type Taylor struct{}

// Name implements Method.
func (Taylor) Name() string { return "taylor" }

// tanhSeries holds the Maclaurin coefficients of tanh(u) for odd powers
// u^1, u^3, …, u^15 (even-power coefficients are zero).
var tanhSeries = []float64{
	1,
	-1.0 / 3,
	2.0 / 15,
	-17.0 / 315,
	62.0 / 2835,
	-1382.0 / 155925,
	21844.0 / 6081075,
	-929569.0 / 638512875,
}

// Fit implements Method for the symmetric sigmoid. Degrees above 15 are
// truncated to 15 (the highest tabulated term).
func (Taylor) Fit(_ func(float64) float64, lo, hi float64, degree int) (poly.Real, error) {
	if err := checkFitArgs(lo, hi, degree); err != nil {
		return nil, err
	}
	coeffs := make([]float64, degree+1)
	for i, c := range tanhSeries {
		pow := 2*i + 1
		if pow > degree {
			break
		}
		// tanh(x/2): substitute u = x/2 into c·u^pow.
		coeffs[pow] = c * math.Pow(0.5, float64(pow))
	}
	return poly.NewReal(coeffs...), nil
}

func checkFitArgs(lo, hi float64, degree int) error {
	if degree < 1 {
		return fmt.Errorf("approx: degree %d must be >= 1", degree)
	}
	if !(lo < hi) {
		return fmt.Errorf("approx: invalid interval [%g, %g]", lo, hi)
	}
	return nil
}

// Report describes the quality of a fit, the σ of the paper's Theorem 1.
type Report struct {
	Method   string
	Degree   int
	Lo, Hi   float64
	MaxError float64 // sup-norm error sampled on 1000 points
}

// Evaluate fits f with the method and measures the sup-norm error.
func Evaluate(m Method, f func(float64) float64, lo, hi float64, degree int) (poly.Real, Report, error) {
	p, err := m.Fit(f, lo, hi, degree)
	if err != nil {
		return nil, Report{}, err
	}
	return p, Report{
		Method:   m.Name(),
		Degree:   degree,
		Lo:       lo,
		Hi:       hi,
		MaxError: p.MaxErrorOn(f, lo, hi, 1000),
	}, nil
}
