package protocol

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"math"
	"testing"
)

// encodeSeed frames m for the corpus; the fuzz seeds must be valid
// frames so the mutator starts from the interesting region.
func encodeSeed(f *testing.F, m *Message) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// encodeSeedV3 frames m under the v3 negotiated encoding, yielding
// binary bodies for the bulk messages.
func encodeSeedV3(f *testing.F, m *Message) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := WriteVersion(&buf, m, Version); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzFrameCodec feeds arbitrary bytes to the frame decoder. Read must
// never panic — a malicious or corrupted peer controls this input — and
// any frame it accepts must re-encode and re-decode to the same message
// (decode∘encode is the identity on accepted frames).
func FuzzFrameCodec(f *testing.F) {
	variants := []*Message{
		{Hello: &Hello{Version: Version, VehicleID: 3}},
		{Setup: &Setup{InputSize: 4, LocalEpochs: 2, LocalRate: 0.05,
			RefX: [][]float64{{1, 2}}, SchemeVehicles: 6, SchemeBatches: 2,
			SchemeDegree: 1, SchemeSeed: 99}},
		{Broadcast: &Broadcast{Round: 1, Params: []float64{0.5, -0.25}}},
		{Upload: &Upload{Round: 1, VehicleID: 2, Values: []float64{1, 2, 3}}},
		{Finished: &Finished{Rounds: 5}},
		{Error: &Error{Reason: "boom"}},
	}
	for _, m := range variants {
		f.Add(encodeSeed(f, m))
	}
	// v3 binary-body frames for the bulk messages, including the float
	// payloads JSON cannot carry at all (NaN bit patterns, infinities).
	f.Add(encodeSeedV3(f, variants[2]))
	f.Add(encodeSeedV3(f, variants[3]))
	f.Add(encodeSeedV3(f, &Message{Broadcast: &Broadcast{Round: 2,
		Params: []float64{math.NaN(), math.Inf(1), math.Copysign(0, -1)}}}))
	f.Add(encodeSeedV3(f, &Message{Upload: &Upload{Round: 7, VehicleID: 1}}))
	// v4 context-bearing binary frames (kinds 3/4), including a NaN
	// payload so the ctx kinds' bit-exact float path is exercised.
	f.Add(encodeSeedV3(f, &Message{Broadcast: &Broadcast{Round: 2,
		Params:  []float64{math.NaN(), 1.5},
		TraceID: "00000000deadbeef", SpanID: "00000000cafef00d"}}))
	f.Add(encodeSeedV3(f, &Message{Upload: &Upload{Round: 2, VehicleID: 3,
		Values:  []float64{-0.5},
		TraceID: "00000000deadbeef", SpanID: "00000000cafef00d"}}))
	// Non-canonical context rides the JSON fallback; the fuzzer mutates
	// from here into the interesting mixed region.
	f.Add(encodeSeedV3(f, &Message{Upload: &Upload{Round: 1, VehicleID: 1,
		Values: []float64{2}, TraceID: "ABC", SpanID: "def"}}))
	// v5 fleet frames: a session-routed hello, an admission answer, and
	// gathers in both encodings (binary kind 5, JSON with context).
	f.Add(encodeSeed(f, &Message{Hello: &Hello{Version: Version, VehicleID: 1, SessionID: "s1"}}))
	f.Add(encodeSeed(f, &Message{Admission: &Admission{Queued: true, Reason: "budget"}}))
	f.Add(encodeSeedV3(f, &Message{Gather: &Gather{Uploads: []Upload{
		{Round: 1, VehicleID: 0, Values: []float64{math.NaN(), 2}},
		{Round: 1, VehicleID: 5},
	}}}))
	f.Add(encodeSeedV3(f, &Message{Gather: &Gather{Uploads: []Upload{
		{Round: 2, VehicleID: 3, Values: []float64{1},
			TraceID: "00000000deadbeef", SpanID: "00000000cafef00d"},
	}}}))
	// Malformed shapes the decoder must reject without panicking.
	corrupt := encodeSeed(f, variants[0])
	corrupt[len(corrupt)-1] ^= 0xff // body flip: CRC mismatch
	f.Add(corrupt)
	f.Add([]byte{})                                       // empty stream
	f.Add([]byte{0, 0, 0})                                // truncated header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})     // oversized length
	f.Add([]byte{0, 0, 0, 2, 0, 0, 0, 0, '{', '}'})       // bad CRC over "{}"
	f.Add(append(encodeSeed(f, variants[4]), 0, 0, 0, 1)) // trailing partial frame
	// Malformed binary bodies (CRC-valid so they reach the parser):
	// bare magic, unknown kind, truncated headers, and a count that
	// disagrees with the payload length.
	for _, body := range [][]byte{
		{0xB3},
		{0xB3, 0x7f},
		{0xB3, 0x01, 1, 0},
		{0xB3, 0x02, 1, 0, 0, 0, 2, 0, 0, 0},
		{0xB3, 0x01, 1, 0, 0, 0, 9, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8},
		// ctx kinds: truncated ctx prefix, and a zero span ID (partial
		// context must be rejected frame-locally).
		{0xB3, 0x03, 1, 2, 3, 4},
		{0xB3, 0x04, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
			1, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0},
		// gather kind: bare header, zero count, over-counted entries,
		// and a truncated inner upload.
		{0xB3, 0x05},
		{0xB3, 0x05, 0, 0, 0, 0},
		{0xB3, 0x05, 9, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0},
		{0xB3, 0x05, 1, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 1, 2},
	} {
		frame := make([]byte, 8, 8+len(body))
		binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
		binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
		f.Add(append(frame, body...))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// A v2-only decoder fed the same stream must fail cleanly on v3
		// binary frames — no panic, no misparse — before we even look at
		// what the current decoder makes of it.
		if m, err := ReadVersion(bytes.NewReader(data), 2); err == nil {
			if err := m.Validate(); err != nil {
				t.Fatalf("v2 read returned an invalid message: %v", err)
			}
		}
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics and hangs are not
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Read returned an invalid message: %v", err)
		}
		// Round trip through the negotiated v3 encoder and compare the
		// re-encodings byte for byte: unlike a JSON comparison this stays
		// meaningful for payloads JSON cannot marshal (NaN), which the
		// binary path round-trips bit-exactly.
		var buf bytes.Buffer
		if err := WriteVersion(&buf, m, Version); err != nil {
			t.Fatalf("accepted message does not re-encode: %v", err)
		}
		m2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		var buf2 bytes.Buffer
		if err := WriteVersion(&buf2, m2, Version); err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("round trip changed the message:\n first: %x\nsecond: %x", buf.Bytes(), buf2.Bytes())
		}
		j1, _ := json.Marshal(m)
		j2, _ := json.Marshal(m2)
		if !bytes.Equal(j1, j2) {
			t.Fatalf("round trip changed the message:\n first: %s\nsecond: %s", j1, j2)
		}
	})
}
