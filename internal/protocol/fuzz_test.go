package protocol

import (
	"bytes"
	"encoding/json"
	"testing"
)

// encodeSeed frames m for the corpus; the fuzz seeds must be valid
// frames so the mutator starts from the interesting region.
func encodeSeed(f *testing.F, m *Message) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzFrameCodec feeds arbitrary bytes to the frame decoder. Read must
// never panic — a malicious or corrupted peer controls this input — and
// any frame it accepts must re-encode and re-decode to the same message
// (decode∘encode is the identity on accepted frames).
func FuzzFrameCodec(f *testing.F) {
	variants := []*Message{
		{Hello: &Hello{Version: Version, VehicleID: 3}},
		{Setup: &Setup{InputSize: 4, LocalEpochs: 2, LocalRate: 0.05,
			RefX: [][]float64{{1, 2}}, SchemeVehicles: 6, SchemeBatches: 2,
			SchemeDegree: 1, SchemeSeed: 99}},
		{Broadcast: &Broadcast{Round: 1, Params: []float64{0.5, -0.25}}},
		{Upload: &Upload{Round: 1, VehicleID: 2, Values: []float64{1, 2, 3}}},
		{Finished: &Finished{Rounds: 5}},
		{Error: &Error{Reason: "boom"}},
	}
	for _, m := range variants {
		f.Add(encodeSeed(f, m))
	}
	// Malformed shapes the decoder must reject without panicking.
	corrupt := encodeSeed(f, variants[0])
	corrupt[len(corrupt)-1] ^= 0xff // body flip: CRC mismatch
	f.Add(corrupt)
	f.Add([]byte{})                                       // empty stream
	f.Add([]byte{0, 0, 0})                                // truncated header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})     // oversized length
	f.Add([]byte{0, 0, 0, 2, 0, 0, 0, 0, '{', '}'})       // bad CRC over "{}"
	f.Add(append(encodeSeed(f, variants[4]), 0, 0, 0, 1)) // trailing partial frame

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics and hangs are not
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Read returned an invalid message: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("accepted message does not re-encode: %v", err)
		}
		m2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		j1, _ := json.Marshal(m)
		j2, _ := json.Marshal(m2)
		if !bytes.Equal(j1, j2) {
			t.Fatalf("round trip changed the message:\n first: %s\nsecond: %s", j1, j2)
		}
	})
}
