package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

func TestRoundTripAllVariants(t *testing.T) {
	msgs := []*Message{
		{Hello: &Hello{Version: 1, VehicleID: 7}},
		{Setup: &Setup{
			InputSize: 16, LocalEpochs: 5, LocalRate: 0.2,
			ActivationCoeffs: []float64{0, 0.46},
			RefX:             [][]float64{{1, -1}},
			SchemeVehicles:   100, SchemeBatches: 16, SchemeDegree: 1, SchemeSeed: 42,
		}},
		{Broadcast: &Broadcast{Round: 3, Params: []float64{0.1, -0.2}}},
		{Upload: &Upload{Round: 3, VehicleID: 7, Values: []float64{1, 2, 3}}},
		{Finished: &Finished{Rounds: 10}},
		{Error: &Error{Reason: "boom"}},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatalf("write %s: %v", m.kind(), err)
		}
	}
	for _, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", want.kind(), err)
		}
		if got.kind() != want.kind() {
			t.Fatalf("kind = %s, want %s", got.kind(), want.kind())
		}
	}
	if _, err := Read(&buf); err != io.EOF {
		t.Errorf("after drain, err = %v, want EOF", err)
	}
}

func TestUploadPayloadIntegrity(t *testing.T) {
	var buf bytes.Buffer
	want := &Message{Upload: &Upload{Round: 2, VehicleID: 3, Values: []float64{0.5, -1.25, 3e10}}}
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Upload.Round != 2 || got.Upload.VehicleID != 3 {
		t.Errorf("metadata mangled: %+v", got.Upload)
	}
	for i, v := range want.Upload.Values {
		if got.Upload.Values[i] != v {
			t.Errorf("value %d = %g, want %g", i, got.Upload.Values[i], v)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	empty := &Message{}
	if err := empty.Validate(); err == nil {
		t.Error("empty message accepted")
	}
	double := &Message{
		Hello:    &Hello{},
		Finished: &Finished{},
	}
	if err := double.Validate(); err == nil {
		t.Error("double-variant message accepted")
	}
	var buf bytes.Buffer
	if err := Write(&buf, empty); err == nil {
		t.Error("writing empty message accepted")
	}
}

func TestReadRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	var header [8]byte
	binary.BigEndian.PutUint32(header[:4], MaxMessageSize+1)
	buf.Write(header[:])
	if _, err := Read(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	var header [8]byte
	binary.BigEndian.PutUint32(header[:4], 4)
	binary.BigEndian.PutUint32(header[4:], crc32.ChecksumIEEE([]byte("!!!!")))
	buf.Write(header[:])
	buf.WriteString("!!!!")
	_, err := Read(&buf)
	if err == nil {
		t.Error("garbage payload accepted")
	}
	if errors.Is(err, ErrCorruptFrame) {
		t.Errorf("checksum-valid garbage misreported as corrupt frame: %v", err)
	}
}

func TestReadTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	var header [8]byte
	binary.BigEndian.PutUint32(header[:4], 100)
	buf.Write(header[:])
	buf.WriteString("{}")
	if _, err := Read(&buf); err == nil {
		t.Error("truncated body accepted")
	}
}

// TestCorruptFrameDetectedAndSkippable pins the chaos-layer contract: a
// frame whose bytes were flipped in flight surfaces as ErrCorruptFrame
// with the frame fully consumed, so the next frame reads cleanly.
func TestCorruptFrameDetectedAndSkippable(t *testing.T) {
	var buf bytes.Buffer
	first := &Message{Upload: &Upload{Round: 1, VehicleID: 4, Values: []float64{1, 2}}}
	second := &Message{Broadcast: &Broadcast{Round: 2, Params: []float64{0.5}}}
	if err := Write(&buf, first); err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf, second); err != nil {
		t.Fatal(err)
	}
	// Flip one body byte of the first frame (past its 8-byte header).
	raw := buf.Bytes()
	raw[8+3] ^= 0x40
	r := bytes.NewReader(raw)
	_, err := Read(r)
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("corrupted frame: err = %v, want ErrCorruptFrame", err)
	}
	got, err := Read(r)
	if err != nil {
		t.Fatalf("stream desynced after corrupt frame: %v", err)
	}
	if got.Broadcast == nil || got.Broadcast.Round != 2 {
		t.Errorf("frame after corruption = %+v, want broadcast round 2", got)
	}
	if _, err := Read(r); err != io.EOF {
		t.Errorf("after drain, err = %v, want EOF", err)
	}
}

// TestWriteCorrupt pins the deliberate-corruption helper the fault
// injector uses: the produced frame fails its checksum but stays
// frame-local.
func TestWriteCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCorrupt(&buf, &Message{Finished: &Finished{Rounds: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf, &Message{Finished: &Finished{Rounds: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("WriteCorrupt frame: err = %v, want ErrCorruptFrame", err)
	}
	got, err := Read(&buf)
	if err != nil || got.Finished == nil || got.Finished.Rounds != 2 {
		t.Fatalf("honest frame after corrupt one: %+v, %v", got, err)
	}
}
