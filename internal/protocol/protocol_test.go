package protocol

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

func TestRoundTripAllVariants(t *testing.T) {
	msgs := []*Message{
		{Hello: &Hello{Version: 1, VehicleID: 7}},
		{Setup: &Setup{
			InputSize: 16, LocalEpochs: 5, LocalRate: 0.2,
			ActivationCoeffs: []float64{0, 0.46},
			RefX:             [][]float64{{1, -1}},
			SchemeVehicles:   100, SchemeBatches: 16, SchemeDegree: 1, SchemeSeed: 42,
		}},
		{Broadcast: &Broadcast{Round: 3, Params: []float64{0.1, -0.2}}},
		{Upload: &Upload{Round: 3, VehicleID: 7, Values: []float64{1, 2, 3}}},
		{Finished: &Finished{Rounds: 10}},
		{Error: &Error{Reason: "boom"}},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatalf("write %s: %v", m.kind(), err)
		}
	}
	for _, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", want.kind(), err)
		}
		if got.kind() != want.kind() {
			t.Fatalf("kind = %s, want %s", got.kind(), want.kind())
		}
	}
	if _, err := Read(&buf); err != io.EOF {
		t.Errorf("after drain, err = %v, want EOF", err)
	}
}

func TestUploadPayloadIntegrity(t *testing.T) {
	var buf bytes.Buffer
	want := &Message{Upload: &Upload{Round: 2, VehicleID: 3, Values: []float64{0.5, -1.25, 3e10}}}
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Upload.Round != 2 || got.Upload.VehicleID != 3 {
		t.Errorf("metadata mangled: %+v", got.Upload)
	}
	for i, v := range want.Upload.Values {
		if got.Upload.Values[i] != v {
			t.Errorf("value %d = %g, want %g", i, got.Upload.Values[i], v)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	empty := &Message{}
	if err := empty.Validate(); err == nil {
		t.Error("empty message accepted")
	}
	double := &Message{
		Hello:    &Hello{},
		Finished: &Finished{},
	}
	if err := double.Validate(); err == nil {
		t.Error("double-variant message accepted")
	}
	var buf bytes.Buffer
	if err := Write(&buf, empty); err == nil {
		t.Error("writing empty message accepted")
	}
}

func TestReadRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], MaxMessageSize+1)
	buf.Write(header[:])
	if _, err := Read(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], 4)
	buf.Write(header[:])
	buf.WriteString("!!!!")
	if _, err := Read(&buf); err == nil {
		t.Error("garbage payload accepted")
	}
}

func TestReadTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], 100)
	buf.Write(header[:])
	buf.WriteString("{}")
	if _, err := Read(&buf); err == nil {
		t.Error("truncated body accepted")
	}
}
