package protocol

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"strings"
	"testing"
)

// reframe wraps a raw body in a valid length+CRC frame.
func reframe(t *testing.T, body []byte) []byte {
	t.Helper()
	frame := make([]byte, headerLen, headerLen+len(body))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	return append(frame, body...)
}

const (
	testTrace = "00000000deadbeef"
	testSpan  = "00000000cafef00d"
)

// TestCtxBinaryRoundTrip: at the negotiated v4 encoding, context-bearing
// bulk messages ride the new binary kinds and round-trip exactly.
func TestCtxBinaryRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Broadcast: &Broadcast{Round: 3, Params: []float64{1.5, -2.25},
			TraceID: testTrace, SpanID: testSpan}},
		{Upload: &Upload{Round: 3, VehicleID: 7, Values: []float64{9, 8},
			TraceID: testTrace, SpanID: testSpan}},
	}
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := WriteVersion(&buf, m, Version); err != nil {
			t.Fatal(err)
		}
		body := buf.Bytes()[headerLen:]
		if body[0] != binaryMagic {
			t.Fatalf("%s with ctx should encode binary at v%d, got body %q", m.Kind(), Version, body)
		}
		if k := body[1]; k != binaryKindBroadcastCtx && k != binaryKindUploadCtx {
			t.Fatalf("%s with ctx used kind %d, want a ctx kind", m.Kind(), k)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		j1, _ := json.Marshal(m)
		j2, _ := json.Marshal(got)
		if !bytes.Equal(j1, j2) {
			t.Fatalf("ctx round trip changed the message:\n sent: %s\n got:  %s", j1, j2)
		}
	}
}

// TestCtxFallsBackToJSONAtV3: a v3 peer does not know the ctx kinds, so
// a context-bearing bulk message must go out as JSON — preserving the
// context for a v4 reader while a v3/v2 reader skips the unknown keys.
func TestCtxFallsBackToJSONAtV3(t *testing.T) {
	m := &Message{Upload: &Upload{Round: 1, VehicleID: 2, Values: []float64{4},
		TraceID: testTrace, SpanID: testSpan}}
	var buf bytes.Buffer
	if err := WriteVersion(&buf, m, 3); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()[headerLen:]
	if body[0] == binaryMagic {
		t.Fatalf("ctx upload must fall back to JSON at v3, got binary kind %d", body[1])
	}
	if !strings.Contains(string(body), testTrace) {
		t.Fatalf("JSON fallback dropped the trace ID: %s", body)
	}
	got, err := ReadVersion(bytes.NewReader(buf.Bytes()), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Upload.TraceID != testTrace || got.Upload.SpanID != testSpan {
		t.Fatalf("context lost through the JSON fallback: %+v", got.Upload)
	}
}

// TestCtxAbsentKeepsV3WireBytes: with tracing off no context fields are
// set, and the v4 encoder must produce byte-identical frames to the v3
// encoder — propagation can never tax an untraced session.
func TestCtxAbsentKeepsV3WireBytes(t *testing.T) {
	msgs := []*Message{
		{Broadcast: &Broadcast{Round: 2, Params: []float64{0.5, 1, 2}}},
		{Upload: &Upload{Round: 2, VehicleID: 4, Values: []float64{7}}},
		{Hello: &Hello{Version: Version, VehicleID: 4}},
		{Setup: &Setup{InputSize: 3, SchemeVehicles: 4, SchemeSeed: 9, WireVersion: 3}},
	}
	for _, m := range msgs {
		var v3, v4 bytes.Buffer
		if err := WriteVersion(&v3, m, 3); err != nil {
			t.Fatal(err)
		}
		if err := WriteVersion(&v4, m, 4); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v3.Bytes(), v4.Bytes()) {
			t.Fatalf("ctx-free %s differs between v3 and v4 encodings:\nv3: %x\nv4: %x",
				m.Kind(), v3.Bytes(), v4.Bytes())
		}
	}
}

// TestCtxNonCanonicalFallsBackToJSON: only canonical 16-digit lowercase
// hex IDs ride the fixed-width binary layout; anything else must take
// the JSON path so the string round-trips byte-for-byte.
func TestCtxNonCanonicalFallsBackToJSON(t *testing.T) {
	for _, ctx := range []struct{ trace, span string }{
		{"abc", "def"},                         // short
		{strings.ToUpper(testTrace), testSpan}, // uppercase
		{testTrace, ""},                        // partial
		{"0000000000000000", testSpan},         // zero trace
	} {
		m := &Message{Broadcast: &Broadcast{Round: 1, Params: []float64{1},
			TraceID: ctx.trace, SpanID: ctx.span}}
		var buf bytes.Buffer
		if err := WriteVersion(&buf, m, Version); err != nil {
			t.Fatal(err)
		}
		if buf.Bytes()[headerLen] == binaryMagic {
			t.Fatalf("non-canonical ctx %+v must not ride the binary path", ctx)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.Broadcast.TraceID != ctx.trace || got.Broadcast.SpanID != ctx.span {
			t.Fatalf("non-canonical ctx rewritten: sent %+v got %+v", ctx, got.Broadcast)
		}
	}
}

// TestCtxBinaryRejectsZeroIDs: a crafted ctx frame with a zero trace or
// span ID is rejected frame-locally — partial context never decodes, so
// decode∘encode stays the identity on accepted frames.
func TestCtxBinaryRejectsZeroIDs(t *testing.T) {
	m := &Message{Broadcast: &Broadcast{Round: 1, Params: []float64{1},
		TraceID: testTrace, SpanID: testSpan}}
	var buf bytes.Buffer
	if err := WriteVersion(&buf, m, Version); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	// Zero out the span ID (bytes 10..18 of the body) and re-checksum.
	body := append([]byte(nil), frame[headerLen:]...)
	for i := 10; i < 18; i++ {
		body[i] = 0
	}
	reframed := reframe(t, body)
	if _, err := Read(bytes.NewReader(reframed)); err == nil {
		t.Fatal("ctx frame with zero span ID must be rejected")
	}
}

// TestTraceContextAccessor covers the per-kind context extraction the
// transport layer uses for telemetry.
func TestTraceContextAccessor(t *testing.T) {
	cases := []struct {
		m           *Message
		trace, span string
	}{
		{&Message{Hello: &Hello{VehicleID: 1, TraceID: testTrace}}, testTrace, ""},
		{&Message{Setup: &Setup{TraceID: testTrace}}, testTrace, ""},
		{&Message{Broadcast: &Broadcast{TraceID: testTrace, SpanID: testSpan}}, testTrace, testSpan},
		{&Message{Upload: &Upload{TraceID: testTrace, SpanID: testSpan}}, testTrace, testSpan},
		{&Message{Finished: &Finished{Rounds: 1}}, "", ""},
	}
	for _, c := range cases {
		trace, span := c.m.TraceContext()
		if trace != c.trace || span != c.span {
			t.Fatalf("%s: TraceContext = (%q, %q), want (%q, %q)", c.m.Kind(), trace, span, c.trace, c.span)
		}
	}
}
