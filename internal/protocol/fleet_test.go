package protocol

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestGatherBinaryRoundTrip: a context-free gather at the fleet version
// travels as one binary frame and round-trips exactly, NaN bit patterns
// included.
func TestGatherBinaryRoundTrip(t *testing.T) {
	want := &Message{Gather: &Gather{Uploads: []Upload{
		{Round: 4, VehicleID: 1, Values: []float64{1.5, -2.25}},
		{Round: 4, VehicleID: 3, Values: nil},
		{Round: 3, VehicleID: 9, Values: []float64{math.NaN(), math.Inf(-1), 0}},
	}}}
	var buf bytes.Buffer
	if err := WriteVersion(&buf, want, FleetVersion); err != nil {
		t.Fatal(err)
	}
	if b := buf.Bytes(); len(b) < 10 || b[8] != binaryMagic || b[9] != binaryKindGather {
		t.Fatalf("frame not binary gather: % x", b[:min(len(b), 12)])
	}
	if got, want := buf.Len(), 4+4+binaryBodyLen(want); got != want {
		t.Fatalf("frame length %d, want %d", got, want)
	}
	if got := EncodedSizeVersion(want, FleetVersion); got != 4+binaryBodyLen(want) {
		t.Fatalf("EncodedSizeVersion = %d, want %d", got, 4+binaryBodyLen(want))
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Gather == nil || len(got.Gather.Uploads) != 3 {
		t.Fatalf("decoded %+v", got)
	}
	for i := range want.Gather.Uploads {
		w, g := want.Gather.Uploads[i], got.Gather.Uploads[i]
		if g.Round != w.Round || g.VehicleID != w.VehicleID || len(g.Values) != len(w.Values) {
			t.Fatalf("upload %d = %+v, want %+v", i, g, w)
		}
		for j := range w.Values {
			if math.Float64bits(g.Values[j]) != math.Float64bits(w.Values[j]) {
				t.Fatalf("upload %d value %d bits differ", i, j)
			}
		}
	}
}

// TestGatherFallsBackToJSON: below the fleet version, or when any inner
// upload carries trace context, the gather goes out as JSON — which
// round-trips the context byte-for-byte.
func TestGatherFallsBackToJSON(t *testing.T) {
	plain := &Message{Gather: &Gather{Uploads: []Upload{{Round: 1, VehicleID: 0, Values: []float64{1}}}}}
	var buf bytes.Buffer
	if err := WriteVersion(&buf, plain, FleetVersion-1); err != nil {
		t.Fatal(err)
	}
	if b := buf.Bytes(); b[8] == binaryMagic {
		t.Fatal("gather emitted in binary below the fleet version")
	}
	buf.Reset()
	traced := &Message{Gather: &Gather{Uploads: []Upload{
		{Round: 1, VehicleID: 0, Values: []float64{1},
			TraceID: "00000000000000ab", SpanID: "00000000000000cd"},
	}}}
	if err := WriteVersion(&buf, traced, FleetVersion); err != nil {
		t.Fatal(err)
	}
	if b := buf.Bytes(); b[8] == binaryMagic {
		t.Fatal("context-bearing gather emitted in binary")
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, traced) {
		t.Fatalf("round trip = %+v, want %+v", got, traced)
	}
}

// TestGatherBinaryRejectsMalformed: truncated and over-counted gather
// bodies are frame-local errors, never panics or misparses.
func TestGatherBinaryRejectsMalformed(t *testing.T) {
	good := &Message{Gather: &Gather{Uploads: []Upload{
		{Round: 1, VehicleID: 2, Values: []float64{3}},
		{Round: 1, VehicleID: 4, Values: []float64{5, 6}},
	}}}
	body := appendBinary(nil, good)
	cases := map[string][]byte{
		"no count":        body[:4],
		"truncated entry": body[:10],
		"truncated tail":  body[:len(body)-1],
		"trailing bytes":  append(append([]byte{}, body...), 0),
	}
	overCount := append([]byte{}, body...)
	overCount[2] = 200 // count u32 LE low byte
	cases["over-counted"] = overCount
	for name, b := range cases {
		if _, err := parseBinary(b); err == nil {
			t.Errorf("%s: malformed gather accepted", name)
		}
	}
	if m, err := parseBinary(body); err != nil || !reflect.DeepEqual(m, good) {
		t.Fatalf("control round trip failed: %v %+v", err, m)
	}
}

// TestAdmissionRoundTrip: admission answers are plain JSON frames and
// survive the codec in both queue and reject shapes.
func TestAdmissionRoundTrip(t *testing.T) {
	for _, want := range []*Message{
		{Admission: &Admission{Queued: true, Reason: "fleet at connection budget"}},
		{Admission: &Admission{Reason: "unknown session", Retry: false}},
		{Admission: &Admission{Reason: "budget exhausted", Retry: true}},
	} {
		var buf bytes.Buffer
		if err := WriteVersion(&buf, want, FleetVersion); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip = %+v, want %+v", got.Admission, want.Admission)
		}
	}
}

// TestHelloSessionIDWireCompat: the session ID rides Hello as an
// optional key — absent it the encoded bytes are identical to the v4
// wire, so v<=4 peers and golden traces are unaffected.
func TestHelloSessionIDWireCompat(t *testing.T) {
	plain := &Message{Hello: &Hello{Version: Version, VehicleID: 2}}
	body, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "session_id") {
		t.Fatalf("empty session ID serialized: %s", body)
	}
	var buf bytes.Buffer
	routed := &Message{Hello: &Hello{Version: Version, VehicleID: 2, SessionID: "s1"}}
	if err := Write(&buf, routed); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hello.SessionID != "s1" {
		t.Fatalf("session ID = %q, want s1", got.Hello.SessionID)
	}
}
