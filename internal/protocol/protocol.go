// Package protocol defines the wire messages exchanged between the fusion
// centre and the vehicles when L-CoFL runs as an actual distributed system
// (package transport carries them; package node speaks them).
//
// Messages are length-prefixed, checksummed JSON: a 4-byte big-endian
// length, a 4-byte CRC-32 (IEEE) of the body, then a JSON envelope
// {type, payload}. JSON keeps the wire debuggable and the stdlib-only
// constraint satisfied; the framing bounds message size so a malformed or
// malicious peer cannot force unbounded allocation, and the checksum turns
// channel corruption into a *detected*, frame-local error: Read consumes
// the corrupted frame entirely and returns ErrCorruptFrame, so the stream
// stays in sync and the caller can keep reading subsequent frames instead
// of tearing the connection down (package node counts these and prompts a
// retransmit; see DESIGN.md §11).
package protocol

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Version is the protocol revision carried in Hello messages. Revision 2
// added the per-frame CRC-32 to the framing.
const Version = 2

// ErrCorruptFrame reports a frame whose body failed its CRC-32 check. The
// frame has been fully consumed when Read returns it, so the connection
// remains usable: callers that can tolerate message loss (the chaos-aware
// node layer) match it with errors.Is, count the corruption, and continue
// reading.
var ErrCorruptFrame = errors.New("protocol: corrupt frame (checksum mismatch)")

// MaxMessageSize bounds a single frame (16 MiB) — far above any real
// L-CoFL message, low enough to stop allocation bombs.
const MaxMessageSize = 16 << 20

// Message is the union of all wire messages. Exactly one pointer field is
// non-nil.
type Message struct {
	Hello     *Hello     `json:"hello,omitempty"`
	Setup     *Setup     `json:"setup,omitempty"`
	Broadcast *Broadcast `json:"broadcast,omitempty"`
	Upload    *Upload    `json:"upload,omitempty"`
	Finished  *Finished  `json:"finished,omitempty"`
	Error     *Error     `json:"error,omitempty"`
}

// Hello opens a connection: the vehicle announces itself.
type Hello struct {
	// Version is the sender's protocol revision.
	Version int `json:"version"`
	// VehicleID identifies the vehicle (assigned out of band).
	VehicleID int `json:"vehicle_id"`
}

// Setup configures a vehicle at session start.
type Setup struct {
	// InputSize is the feature-vector length.
	InputSize int `json:"input_size"`
	// LocalEpochs and LocalRate configure local SGD (paper eq. 1).
	LocalEpochs int     `json:"local_epochs"`
	LocalRate   float64 `json:"local_rate"`
	// ActivationCoeffs holds the polynomial activation the vehicles must
	// install (paper §IV Step 2); empty means the exact symmetric
	// sigmoid.
	ActivationCoeffs []float64 `json:"activation_coeffs,omitempty"`
	// RefX is the fusion centre's reference feature set.
	RefX [][]float64 `json:"ref_x"`
	// SchemeVehicles, SchemeBatches, SchemeDegree and SchemeSeed let the
	// vehicle rebuild the identical (deterministic) L-CoFL scheme so its
	// encoded shares match the fusion centre's.
	SchemeVehicles int   `json:"scheme_vehicles"`
	SchemeBatches  int   `json:"scheme_batches"`
	SchemeDegree   int   `json:"scheme_degree"`
	SchemeSeed     int64 `json:"scheme_seed"`
}

// Broadcast starts a round: the shared model parameters.
type Broadcast struct {
	// Round is the 1-based round number.
	Round int `json:"round"`
	// Params is the shared model's flat parameter vector.
	Params []float64 `json:"params"`
}

// Upload carries a vehicle's round contribution.
type Upload struct {
	// Round echoes the broadcast round.
	Round int `json:"round"`
	// VehicleID identifies the sender.
	VehicleID int `json:"vehicle_id"`
	// Values is the scheme-defined upload vector.
	Values []float64 `json:"values"`
}

// Finished ends the session.
type Finished struct {
	// Rounds is the number of completed rounds.
	Rounds int `json:"rounds"`
}

// Error reports a fatal condition to the peer before closing.
type Error struct {
	// Reason is a human-readable description.
	Reason string `json:"reason"`
}

// Kind returns the message discriminator ("hello", "upload", …) — used
// in errors and as the message-type label on transport telemetry.
func (m *Message) Kind() string { return m.kind() }

// EncodedSize returns the exact on-wire size of the message in bytes
// (4-byte length prefix plus JSON body), or 0 when it cannot marshal.
// The instrumented transport uses it to account bytes per connection.
func EncodedSize(m *Message) int {
	body, err := json.Marshal(m)
	if err != nil {
		return 0
	}
	return 4 + len(body)
}

// kind returns the message discriminator for validation and errors.
func (m *Message) kind() string {
	switch {
	case m.Hello != nil:
		return "hello"
	case m.Setup != nil:
		return "setup"
	case m.Broadcast != nil:
		return "broadcast"
	case m.Upload != nil:
		return "upload"
	case m.Finished != nil:
		return "finished"
	case m.Error != nil:
		return "error"
	}
	return ""
}

// Validate checks that exactly one variant is set.
func (m *Message) Validate() error {
	count := 0
	for _, set := range []bool{
		m.Hello != nil, m.Setup != nil, m.Broadcast != nil,
		m.Upload != nil, m.Finished != nil, m.Error != nil,
	} {
		if set {
			count++
		}
	}
	if count != 1 {
		return fmt.Errorf("protocol: message must carry exactly one variant, has %d", count)
	}
	return nil
}

// headerLen is the frame header size: 4-byte length + 4-byte CRC-32.
const headerLen = 8

// Write frames and writes one message.
func Write(w io.Writer, m *Message) error {
	return writeFrame(w, m, 0)
}

// WriteCorrupt frames and writes one message with a deliberately wrong
// checksum, so the receiver's Read returns ErrCorruptFrame while the
// stream stays in sync. It exists for the fault-injection layer
// (internal/chaos via transport's Faulter): end-to-end tests exercise the
// real detection path instead of simulating it.
func WriteCorrupt(w io.Writer, m *Message) error {
	return writeFrame(w, m, 1)
}

// writeFrame marshals, frames, and writes m; crcFlip is XORed into the
// checksum (0 for an honest frame).
func writeFrame(w io.Writer, m *Message, crcFlip uint32) error {
	if err := m.Validate(); err != nil {
		return err
	}
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("protocol: marshal %s: %w", m.kind(), err)
	}
	if len(body) > MaxMessageSize {
		return fmt.Errorf("protocol: %s message of %d bytes exceeds limit", m.kind(), len(body))
	}
	var header [headerLen]byte
	binary.BigEndian.PutUint32(header[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(header[4:], crc32.ChecksumIEEE(body)^crcFlip)
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("protocol: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("protocol: write body: %w", err)
	}
	return nil
}

// Read reads and validates one framed message. A checksum mismatch
// returns an error wrapping ErrCorruptFrame with the frame fully
// consumed, so the caller may continue reading the stream.
func Read(r io.Reader) (*Message, error) {
	var header [headerLen]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	size := binary.BigEndian.Uint32(header[:4])
	sum := binary.BigEndian.Uint32(header[4:])
	if size > MaxMessageSize {
		return nil, fmt.Errorf("protocol: incoming frame of %d bytes exceeds limit", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("protocol: read body: %w", err)
	}
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: %d-byte frame, checksum %08x want %08x", ErrCorruptFrame, size, got, sum)
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("protocol: unmarshal: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
