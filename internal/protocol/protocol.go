// Package protocol defines the wire messages exchanged between the fusion
// centre and the vehicles when L-CoFL runs as an actual distributed system
// (package transport carries them; package node speaks them).
//
// Messages are length-prefixed, checksummed JSON: a 4-byte big-endian
// length, a 4-byte CRC-32 (IEEE) of the body, then a JSON envelope
// {type, payload}. JSON keeps the wire debuggable and the stdlib-only
// constraint satisfied; the framing bounds message size so a malformed or
// malicious peer cannot force unbounded allocation, and the checksum turns
// channel corruption into a *detected*, frame-local error: Read consumes
// the corrupted frame entirely and returns ErrCorruptFrame, so the stream
// stays in sync and the caller can keep reading subsequent frames instead
// of tearing the connection down (package node counts these and prompts a
// retransmit; see DESIGN.md §11).
//
// Protocol revision 3 adds a binary body encoding for the two bulk
// messages (Broadcast and Upload): raw little-endian float64 payloads
// inside the same length+CRC frame, roughly 2.5x smaller than their
// decimal-text JSON form at realistic parameter counts (DESIGN.md §13).
// The encoding is negotiated per connection via the Hello version, so v2
// JSON-only peers interoperate: WriteVersion only emits binary bodies
// when the negotiated version is >= 3, and the binary marker byte cannot
// begin a JSON value, so a mis-delivered binary frame fails cleanly in a
// v2 decoder.
package protocol

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Version is the protocol revision carried in Hello messages. Revision 2
// added the per-frame CRC-32 to the framing; revision 3 adds the binary
// body encoding for Broadcast and Upload.
const Version = 3

// ErrCorruptFrame reports a frame whose body failed its CRC-32 check. The
// frame has been fully consumed when Read returns it, so the connection
// remains usable: callers that can tolerate message loss (the chaos-aware
// node layer) match it with errors.Is, count the corruption, and continue
// reading.
var ErrCorruptFrame = errors.New("protocol: corrupt frame (checksum mismatch)")

// MaxMessageSize bounds a single frame (16 MiB) — far above any real
// L-CoFL message, low enough to stop allocation bombs.
const MaxMessageSize = 16 << 20

// Message is the union of all wire messages. Exactly one pointer field is
// non-nil.
type Message struct {
	Hello     *Hello     `json:"hello,omitempty"`
	Setup     *Setup     `json:"setup,omitempty"`
	Broadcast *Broadcast `json:"broadcast,omitempty"`
	Upload    *Upload    `json:"upload,omitempty"`
	Finished  *Finished  `json:"finished,omitempty"`
	Error     *Error     `json:"error,omitempty"`
}

// Hello opens a connection: the vehicle announces itself.
type Hello struct {
	// Version is the sender's protocol revision.
	Version int `json:"version"`
	// VehicleID identifies the vehicle (assigned out of band).
	VehicleID int `json:"vehicle_id"`
}

// Setup configures a vehicle at session start.
type Setup struct {
	// InputSize is the feature-vector length.
	InputSize int `json:"input_size"`
	// LocalEpochs and LocalRate configure local SGD (paper eq. 1).
	LocalEpochs int     `json:"local_epochs"`
	LocalRate   float64 `json:"local_rate"`
	// ActivationCoeffs holds the polynomial activation the vehicles must
	// install (paper §IV Step 2); empty means the exact symmetric
	// sigmoid.
	ActivationCoeffs []float64 `json:"activation_coeffs,omitempty"`
	// RefX is the fusion centre's reference feature set.
	RefX [][]float64 `json:"ref_x"`
	// SchemeVehicles, SchemeBatches, SchemeDegree and SchemeSeed let the
	// vehicle rebuild the identical (deterministic) L-CoFL scheme so its
	// encoded shares match the fusion centre's.
	SchemeVehicles int   `json:"scheme_vehicles"`
	SchemeBatches  int   `json:"scheme_batches"`
	SchemeDegree   int   `json:"scheme_degree"`
	SchemeSeed     int64 `json:"scheme_seed"`
	// WireVersion is the protocol revision the fusion centre negotiated
	// for this connection: min(its own Version, the vehicle's Hello
	// version). Absent (0) means revision 2, the JSON-only encoding —
	// which is also how a revision-2 fusion centre, ignorant of the
	// field, is correctly interpreted.
	WireVersion int `json:"wire_version,omitempty"`
}

// Broadcast starts a round: the shared model parameters.
type Broadcast struct {
	// Round is the 1-based round number.
	Round int `json:"round"`
	// Params is the shared model's flat parameter vector.
	Params []float64 `json:"params"`
}

// Upload carries a vehicle's round contribution.
type Upload struct {
	// Round echoes the broadcast round.
	Round int `json:"round"`
	// VehicleID identifies the sender.
	VehicleID int `json:"vehicle_id"`
	// Values is the scheme-defined upload vector.
	Values []float64 `json:"values"`
}

// Finished ends the session.
type Finished struct {
	// Rounds is the number of completed rounds.
	Rounds int `json:"rounds"`
}

// Error reports a fatal condition to the peer before closing.
type Error struct {
	// Reason is a human-readable description.
	Reason string `json:"reason"`
}

// Kind returns the message discriminator ("hello", "upload", …) — used
// in errors and as the message-type label on transport telemetry.
func (m *Message) Kind() string { return m.kind() }

// EncodedSize returns the exact on-wire size of the message in bytes
// (4-byte length prefix plus JSON body), or 0 when it cannot marshal.
// The instrumented transport uses it to account bytes per connection.
func EncodedSize(m *Message) int {
	body, err := json.Marshal(m)
	if err != nil {
		return 0
	}
	return 4 + len(body)
}

// EncodedSizeVersion is EncodedSize under a negotiated protocol version:
// for messages WriteVersion would emit in binary form the size is pure
// arithmetic (no marshalling), otherwise it defers to EncodedSize.
func EncodedSizeVersion(m *Message, version int) int {
	if !binaryEligible(m, version) {
		return EncodedSize(m)
	}
	return 4 + binaryBodyLen(m)
}

// kind returns the message discriminator for validation and errors.
func (m *Message) kind() string {
	switch {
	case m.Hello != nil:
		return "hello"
	case m.Setup != nil:
		return "setup"
	case m.Broadcast != nil:
		return "broadcast"
	case m.Upload != nil:
		return "upload"
	case m.Finished != nil:
		return "finished"
	case m.Error != nil:
		return "error"
	}
	return ""
}

// Validate checks that exactly one variant is set.
func (m *Message) Validate() error {
	count := 0
	for _, set := range []bool{
		m.Hello != nil, m.Setup != nil, m.Broadcast != nil,
		m.Upload != nil, m.Finished != nil, m.Error != nil,
	} {
		if set {
			count++
		}
	}
	if count != 1 {
		return fmt.Errorf("protocol: message must carry exactly one variant, has %d", count)
	}
	return nil
}

// headerLen is the frame header size: 4-byte length + 4-byte CRC-32.
const headerLen = 8

// Binary body encoding (protocol revision 3, DESIGN.md §13). The body
// replaces the JSON envelope inside the unchanged length+CRC frame:
//
//	byte 0: binaryMagic (0xB3)
//	byte 1: kind (1 = broadcast, 2 = upload)
//	broadcast: round u32 LE, count u32 LE, count x 8-byte LE float64 bits
//	upload:    round u32 LE, vehicle u32 LE, count u32 LE, count x 8 bytes
//
// 0xB3 cannot open a JSON value, so a v2 decoder handed a binary frame
// fails with an ordinary unmarshal error — never a panic, never a
// misparse — and the stream stays in sync (the frame was length-consumed).
// Floats travel as IEEE 754 bit patterns, bit-exact round trips included
// for NaN payloads that JSON cannot represent at all.
const binaryMagic = 0xB3

const (
	binaryKindBroadcast = 1
	binaryKindUpload    = 2
)

// maxBinaryValues caps the float count so a binary body respects
// MaxMessageSize.
const maxBinaryValues = (MaxMessageSize - 14) / 8

// binaryEligible reports whether WriteVersion encodes m as a binary body
// under the given negotiated version: bulk messages only, with integer
// fields that fit the fixed-width wire layout (anything else falls back
// to JSON, which both sides always accept).
func binaryEligible(m *Message, version int) bool {
	if version < 3 {
		return false
	}
	switch {
	case m.Broadcast != nil:
		b := m.Broadcast
		return fitsUint32(b.Round) && len(b.Params) <= maxBinaryValues
	case m.Upload != nil:
		u := m.Upload
		return fitsUint32(u.Round) && fitsUint32(u.VehicleID) && len(u.Values) <= maxBinaryValues
	}
	return false
}

func fitsUint32(v int) bool { return v >= 0 && int64(v) <= math.MaxUint32 }

// binaryBodyLen returns the body length of a binary-eligible message.
func binaryBodyLen(m *Message) int {
	if m.Broadcast != nil {
		return 10 + 8*len(m.Broadcast.Params)
	}
	return 14 + 8*len(m.Upload.Values)
}

// appendBinary encodes a binary-eligible message into dst.
func appendBinary(dst []byte, m *Message) []byte {
	if b := m.Broadcast; b != nil {
		dst = append(dst, binaryMagic, binaryKindBroadcast)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(b.Round))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Params)))
		for _, v := range b.Params {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
		return dst
	}
	u := m.Upload
	dst = append(dst, binaryMagic, binaryKindUpload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(u.Round))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(u.VehicleID))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(u.Values)))
	for _, v := range u.Values {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// parseBinary decodes a binary body (first byte already known to be
// binaryMagic). Every length is validated exactly: a body that is too
// short, too long, or over-counted is a frame-local error, mirroring the
// strictness JSON unmarshalling provides on the text path.
func parseBinary(body []byte) (*Message, error) {
	if len(body) < 2 {
		return nil, fmt.Errorf("protocol: binary body of %d bytes lacks a kind", len(body))
	}
	kind := body[1]
	rest := body[2:]
	readU32 := func() uint32 {
		v := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		return v
	}
	switch kind {
	case binaryKindBroadcast:
		if len(rest) < 8 {
			return nil, fmt.Errorf("protocol: binary broadcast header truncated (%d bytes)", len(rest))
		}
		round := readU32()
		count := readU32()
		if count > maxBinaryValues || len(rest) != 8*int(count) {
			return nil, fmt.Errorf("protocol: binary broadcast declares %d values in %d payload bytes", count, len(rest))
		}
		bc := &Broadcast{Round: int(round)}
		bc.Params = readFloats(rest, int(count))
		return &Message{Broadcast: bc}, nil
	case binaryKindUpload:
		if len(rest) < 12 {
			return nil, fmt.Errorf("protocol: binary upload header truncated (%d bytes)", len(rest))
		}
		round := readU32()
		vehicle := readU32()
		count := readU32()
		if count > maxBinaryValues || len(rest) != 8*int(count) {
			return nil, fmt.Errorf("protocol: binary upload declares %d values in %d payload bytes", count, len(rest))
		}
		up := &Upload{Round: int(round), VehicleID: int(vehicle)}
		up.Values = readFloats(rest, int(count))
		return &Message{Upload: up}, nil
	}
	return nil, fmt.Errorf("protocol: unknown binary message kind %d", kind)
}

func readFloats(b []byte, count int) []float64 {
	if count == 0 {
		return nil
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Write frames and writes one message in JSON form — the encoding every
// protocol revision accepts.
func Write(w io.Writer, m *Message) error {
	return writeFrame(w, m, 0)
}

// WriteVersion frames and writes one message under a negotiated protocol
// version: bulk messages (Broadcast, Upload) go out as binary bodies
// when the peer negotiated version >= 3, everything else (and every
// message to an older peer) as JSON.
func WriteVersion(w io.Writer, m *Message, version int) error {
	if !binaryEligible(m, version) {
		return writeFrame(w, m, 0)
	}
	if err := m.Validate(); err != nil {
		return err
	}
	body := appendBinary(make([]byte, 0, binaryBodyLen(m)), m)
	if len(body) > MaxMessageSize {
		return fmt.Errorf("protocol: %s message of %d bytes exceeds limit", m.kind(), len(body))
	}
	var header [headerLen]byte
	binary.BigEndian.PutUint32(header[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(header[4:], crc32.ChecksumIEEE(body))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("protocol: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("protocol: write body: %w", err)
	}
	return nil
}

// WriteCorrupt frames and writes one message with a deliberately wrong
// checksum, so the receiver's Read returns ErrCorruptFrame while the
// stream stays in sync. It exists for the fault-injection layer
// (internal/chaos via transport's Faulter): end-to-end tests exercise the
// real detection path instead of simulating it.
func WriteCorrupt(w io.Writer, m *Message) error {
	return writeFrame(w, m, 1)
}

// writeFrame marshals, frames, and writes m; crcFlip is XORed into the
// checksum (0 for an honest frame).
func writeFrame(w io.Writer, m *Message, crcFlip uint32) error {
	if err := m.Validate(); err != nil {
		return err
	}
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("protocol: marshal %s: %w", m.kind(), err)
	}
	if len(body) > MaxMessageSize {
		return fmt.Errorf("protocol: %s message of %d bytes exceeds limit", m.kind(), len(body))
	}
	var header [headerLen]byte
	binary.BigEndian.PutUint32(header[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(header[4:], crc32.ChecksumIEEE(body)^crcFlip)
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("protocol: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("protocol: write body: %w", err)
	}
	return nil
}

// Read reads and validates one framed message, accepting every body
// encoding the current protocol revision knows. A checksum mismatch
// returns an error wrapping ErrCorruptFrame with the frame fully
// consumed, so the caller may continue reading the stream.
func Read(r io.Reader) (*Message, error) {
	return ReadVersion(r, Version)
}

// ReadVersion is Read restricted to the body encodings of the given
// protocol version: a v2 reader handed a v3 binary frame returns a
// frame-local error (the frame is fully consumed, the stream stays in
// sync) instead of attempting to parse it.
func ReadVersion(r io.Reader, version int) (*Message, error) {
	var header [headerLen]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	size := binary.BigEndian.Uint32(header[:4])
	sum := binary.BigEndian.Uint32(header[4:])
	if size > MaxMessageSize {
		return nil, fmt.Errorf("protocol: incoming frame of %d bytes exceeds limit", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("protocol: read body: %w", err)
	}
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: %d-byte frame, checksum %08x want %08x", ErrCorruptFrame, size, got, sum)
	}
	if len(body) > 0 && body[0] == binaryMagic {
		if version < 3 {
			return nil, fmt.Errorf("protocol: binary frame not supported at negotiated version %d", version)
		}
		m, err := parseBinary(body)
		if err != nil {
			return nil, err
		}
		if err := m.Validate(); err != nil {
			return nil, err
		}
		return m, nil
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("protocol: unmarshal: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
