// Package protocol defines the wire messages exchanged between the fusion
// centre and the vehicles when L-CoFL runs as an actual distributed system
// (package transport carries them; package node speaks them).
//
// Messages are length-prefixed, checksummed JSON: a 4-byte big-endian
// length, a 4-byte CRC-32 (IEEE) of the body, then a JSON envelope
// {type, payload}. JSON keeps the wire debuggable and the stdlib-only
// constraint satisfied; the framing bounds message size so a malformed or
// malicious peer cannot force unbounded allocation, and the checksum turns
// channel corruption into a *detected*, frame-local error: Read consumes
// the corrupted frame entirely and returns ErrCorruptFrame, so the stream
// stays in sync and the caller can keep reading subsequent frames instead
// of tearing the connection down (package node counts these and prompts a
// retransmit; see DESIGN.md §11).
//
// Protocol revision 3 adds a binary body encoding for the two bulk
// messages (Broadcast and Upload): raw little-endian float64 payloads
// inside the same length+CRC frame, roughly 2.5x smaller than their
// decimal-text JSON form at realistic parameter counts (DESIGN.md §13).
// The encoding is negotiated per connection via the Hello version, so v2
// JSON-only peers interoperate: WriteVersion only emits binary bodies
// when the negotiated version is >= 3, and the binary marker byte cannot
// begin a JSON value, so a mis-delivered binary frame fails cleanly in a
// v2 decoder.
//
// Protocol revision 4 adds trace-context propagation (DESIGN.md §15):
// Hello/Setup establish the session trace and exchange the handshake
// clock readings used for offset estimation, and Broadcast/Upload carry
// the round span context. All context fields are optional — absent with
// tracing off, ignored by older peers (unknown JSON keys) — so the
// tracing-off wire is byte-identical to revision 3. Bulk messages WITH
// context use two new binary kinds (3, 4) emitted only at negotiated
// version >= 4; at version 3 a context-bearing bulk message falls back
// to JSON, which preserves the context for a v4 peer while a v2/v3 peer
// simply skips the unknown keys.
//
// Protocol revision 5 is the fleet revision (DESIGN.md §16): Hello gains
// an optional session ID so one listener can route connections to many
// concurrent FL sessions, Admission lets a fleet answer a handshake with
// an explicit queue/reject decision before any Setup exists, and Gather
// lets an edge relay combine its shard's uploads into one upstream frame
// (binary kind 5 for context-free payloads). All three degrade liberally:
// a v<=4 peer never receives Admission or Gather (rejections fall back to
// Error, gathering stays off on its legs) and its Hello simply lacks a
// session ID, which routes it to the fleet's default session.
package protocol

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Version is the protocol revision carried in Hello messages. Revision 2
// added the per-frame CRC-32 to the framing; revision 3 adds the binary
// body encoding for Broadcast and Upload; revision 4 adds trace-context
// propagation (binary kinds 3/4 and the optional JSON context fields);
// revision 5 adds the fleet messages (session routing, Admission,
// Gather).
const Version = 5

// FleetVersion is the first revision that understands the fleet
// messages: Hello.SessionID routing, Admission handshake answers, and
// relay Gather frames. Senders gate all three on the peer's negotiated
// version being at least this.
const FleetVersion = 5

// ErrCorruptFrame reports a frame whose body failed its CRC-32 check. The
// frame has been fully consumed when Read returns it, so the connection
// remains usable: callers that can tolerate message loss (the chaos-aware
// node layer) match it with errors.Is, count the corruption, and continue
// reading.
var ErrCorruptFrame = errors.New("protocol: corrupt frame (checksum mismatch)")

// MaxMessageSize bounds a single frame (16 MiB) — far above any real
// L-CoFL message, low enough to stop allocation bombs.
const MaxMessageSize = 16 << 20

// Message is the union of all wire messages. Exactly one pointer field is
// non-nil.
type Message struct {
	Hello     *Hello     `json:"hello,omitempty"`
	Setup     *Setup     `json:"setup,omitempty"`
	Broadcast *Broadcast `json:"broadcast,omitempty"`
	Upload    *Upload    `json:"upload,omitempty"`
	Gather    *Gather    `json:"gather,omitempty"`
	Admission *Admission `json:"admission,omitempty"`
	Finished  *Finished  `json:"finished,omitempty"`
	Error     *Error     `json:"error,omitempty"`
}

// Hello opens a connection: the vehicle announces itself.
type Hello struct {
	// Version is the sender's protocol revision.
	Version int `json:"version"`
	// VehicleID identifies the vehicle (assigned out of band).
	VehicleID int `json:"vehicle_id"`
	// TraceID is the vehicle process's own trace ID (canonical 16-digit
	// hex, see internal/obs FormatID), recorded by the fusion centre so
	// a merged timeline can link per-process trace files. Empty when the
	// vehicle runs untraced.
	TraceID string `json:"trace_id,omitempty"`
	// SessionID names the FL session this connection joins on a
	// multi-session fleet (revision 5). Empty — including every hello
	// from a v<=4 build, which has no such field — selects the fleet's
	// default session; a single-session fusion centre ignores it.
	SessionID string `json:"session_id,omitempty"`
}

// Setup configures a vehicle at session start.
type Setup struct {
	// InputSize is the feature-vector length.
	InputSize int `json:"input_size"`
	// LocalEpochs and LocalRate configure local SGD (paper eq. 1).
	LocalEpochs int     `json:"local_epochs"`
	LocalRate   float64 `json:"local_rate"`
	// ActivationCoeffs holds the polynomial activation the vehicles must
	// install (paper §IV Step 2); empty means the exact symmetric
	// sigmoid.
	ActivationCoeffs []float64 `json:"activation_coeffs,omitempty"`
	// RefX is the fusion centre's reference feature set.
	RefX [][]float64 `json:"ref_x"`
	// SchemeVehicles, SchemeBatches, SchemeDegree and SchemeSeed let the
	// vehicle rebuild the identical (deterministic) L-CoFL scheme so its
	// encoded shares match the fusion centre's.
	SchemeVehicles int   `json:"scheme_vehicles"`
	SchemeBatches  int   `json:"scheme_batches"`
	SchemeDegree   int   `json:"scheme_degree"`
	SchemeSeed     int64 `json:"scheme_seed"`
	// WireVersion is the protocol revision the fusion centre negotiated
	// for this connection: min(its own Version, the vehicle's Hello
	// version). Absent (0) means revision 2, the JSON-only encoding —
	// which is also how a revision-2 fusion centre, ignorant of the
	// field, is correctly interpreted.
	WireVersion int `json:"wire_version,omitempty"`
	// TraceID is the session trace every process joins (derived from
	// SchemeSeed on both sides; carried explicitly so a vehicle adopts
	// the fusion centre's trace even if derivation rules ever diverge
	// across releases). Empty when the fusion centre runs untraced.
	TraceID string `json:"trace_id,omitempty"`
	// HelloNs and ClockNs are the fusion centre's clock readings (ns
	// since its obs.Clock epoch) when the connection's Hello arrived and
	// when this Setup was sent. With the vehicle's own send/receive
	// stamps they give the RTT-midpoint clock-offset estimate recorded
	// as the node.clock_offset trace event (DESIGN.md §15). Zero when
	// the fusion centre runs untraced.
	HelloNs int64 `json:"hello_ns,omitempty"`
	ClockNs int64 `json:"clock_ns,omitempty"`
}

// Broadcast starts a round: the shared model parameters.
type Broadcast struct {
	// Round is the 1-based round number.
	Round int `json:"round"`
	// Params is the shared model's flat parameter vector.
	Params []float64 `json:"params"`
	// TraceID/SpanID carry the fusion centre's round span context so
	// vehicle-side train/encode/upload spans can parent under it. Both
	// canonical 16-digit hex; empty when tracing is off.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// Upload carries a vehicle's round contribution.
type Upload struct {
	// Round echoes the broadcast round.
	Round int `json:"round"`
	// VehicleID identifies the sender.
	VehicleID int `json:"vehicle_id"`
	// Values is the scheme-defined upload vector.
	Values []float64 `json:"values"`
	// TraceID/SpanID carry the vehicle's upload span context so the
	// fusion centre's ingest event can parent under the send that
	// produced it. Empty when tracing is off.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// Gather is an edge relay's combined upstream frame (revision 5): the
// uploads of several vehicles in the relay's shard, gathered into one
// frame so the fusion centre pays one read per shard burst instead of
// one per vehicle. Each inner upload is byte-equivalent to the frame the
// vehicle sent — round, sender and trace context included — so the
// fusion centre processes a gathered upload exactly like a direct one.
// Relays only emit Gather on connections whose negotiated version is
// >= FleetVersion; on older legs they stay transparent pipes.
type Gather struct {
	// Uploads holds the combined shard contributions, in the order the
	// relay absorbed them.
	Uploads []Upload `json:"uploads"`
}

// Admission answers a Hello on a fleet-scale fusion centre (revision 5)
// when Setup cannot follow immediately: the connection was queued behind
// the fleet's connection budget, or rejected outright. Acceptance is
// implied by Setup itself, so an admitted vehicle never waits on an
// extra frame. A v<=4 peer never sees Admission — rejections fall back
// to the Error message it already understands.
type Admission struct {
	// Queued reports the connection is parked in the fleet's admission
	// queue; the vehicle should keep waiting for Setup.
	Queued bool `json:"queued,omitempty"`
	// Reason describes a rejection (or the queueing) in human terms.
	Reason string `json:"reason,omitempty"`
	// Retry hints that a rejection is temporary — the fleet was full —
	// and a later reconnect may be admitted.
	Retry bool `json:"retry,omitempty"`
}

// Finished ends the session.
type Finished struct {
	// Rounds is the number of completed rounds.
	Rounds int `json:"rounds"`
}

// Error reports a fatal condition to the peer before closing.
type Error struct {
	// Reason is a human-readable description.
	Reason string `json:"reason"`
}

// Kind returns the message discriminator ("hello", "upload", …) — used
// in errors and as the message-type label on transport telemetry.
func (m *Message) Kind() string { return m.kind() }

// TraceContext returns the trace/span context the message carries
// ("", "" when none): round context on the bulk messages, the session
// trace on Hello/Setup. Transport telemetry attaches it to the
// per-message send/recv events.
func (m *Message) TraceContext() (trace, span string) {
	switch {
	case m.Broadcast != nil:
		return m.Broadcast.TraceID, m.Broadcast.SpanID
	case m.Upload != nil:
		return m.Upload.TraceID, m.Upload.SpanID
	case m.Hello != nil:
		return m.Hello.TraceID, ""
	case m.Setup != nil:
		return m.Setup.TraceID, ""
	}
	return "", ""
}

// EncodedSize returns the exact on-wire size of the message in bytes
// (4-byte length prefix plus JSON body), or 0 when it cannot marshal.
// The instrumented transport uses it to account bytes per connection.
func EncodedSize(m *Message) int {
	body, err := json.Marshal(m)
	if err != nil {
		return 0
	}
	return 4 + len(body)
}

// EncodedSizeVersion is EncodedSize under a negotiated protocol version:
// for messages WriteVersion would emit in binary form the size is pure
// arithmetic (no marshalling), otherwise it defers to EncodedSize.
func EncodedSizeVersion(m *Message, version int) int {
	if !binaryEligible(m, version) {
		return EncodedSize(m)
	}
	return 4 + binaryBodyLen(m)
}

// kind returns the message discriminator for validation and errors.
func (m *Message) kind() string {
	switch {
	case m.Hello != nil:
		return "hello"
	case m.Setup != nil:
		return "setup"
	case m.Broadcast != nil:
		return "broadcast"
	case m.Upload != nil:
		return "upload"
	case m.Gather != nil:
		return "gather"
	case m.Admission != nil:
		return "admission"
	case m.Finished != nil:
		return "finished"
	case m.Error != nil:
		return "error"
	}
	return ""
}

// Validate checks that exactly one variant is set.
func (m *Message) Validate() error {
	count := 0
	for _, set := range []bool{
		m.Hello != nil, m.Setup != nil, m.Broadcast != nil,
		m.Upload != nil, m.Gather != nil, m.Admission != nil,
		m.Finished != nil, m.Error != nil,
	} {
		if set {
			count++
		}
	}
	if count != 1 {
		return fmt.Errorf("protocol: message must carry exactly one variant, has %d", count)
	}
	return nil
}

// headerLen is the frame header size: 4-byte length + 4-byte CRC-32.
const headerLen = 8

// Binary body encoding (protocol revision 3, DESIGN.md §13). The body
// replaces the JSON envelope inside the unchanged length+CRC frame:
//
//	byte 0: binaryMagic (0xB3)
//	byte 1: kind (1 = broadcast, 2 = upload)
//	broadcast: round u32 LE, count u32 LE, count x 8-byte LE float64 bits
//	upload:    round u32 LE, vehicle u32 LE, count u32 LE, count x 8 bytes
//
// 0xB3 cannot open a JSON value, so a v2 decoder handed a binary frame
// fails with an ordinary unmarshal error — never a panic, never a
// misparse — and the stream stays in sync (the frame was length-consumed).
// Floats travel as IEEE 754 bit patterns, bit-exact round trips included
// for NaN payloads that JSON cannot represent at all.
const binaryMagic = 0xB3

// Revision 4 adds context-bearing variants of the two bulk kinds
// (DESIGN.md §15): the same layout prefixed with the trace and span IDs
// as little-endian u64. A context kind with either ID zero is rejected —
// partial context never rides the binary path, so every accepted frame
// re-encodes to identical bytes.
//
//	broadcast+ctx: trace u64 LE, span u64 LE, round u32, count u32, floats
//	upload+ctx:    trace u64 LE, span u64 LE, round u32, vehicle u32, count u32, floats
//
// Revision 5 adds the gather kind: a shard's context-free uploads packed
// back to back. Context-bearing gathers fall back to JSON — the traced
// path is diagnostic, not hot — so the binary layout stays flat:
//
//	gather: count u32, then per upload: round u32, vehicle u32, n u32,
//	        n x 8-byte LE float64 bits
const (
	binaryKindBroadcast    = 1
	binaryKindUpload       = 2
	binaryKindBroadcastCtx = 3
	binaryKindUploadCtx    = 4
	binaryKindGather       = 5
)

// maxBinaryValues caps the float count so a binary body respects
// MaxMessageSize even under the largest (upload+ctx) header.
const maxBinaryValues = (MaxMessageSize - 30) / 8

// binaryEligible reports whether WriteVersion encodes m as a binary body
// under the given negotiated version: bulk messages only, with integer
// fields that fit the fixed-width wire layout (anything else falls back
// to JSON, which both sides always accept). Trace context additionally
// requires version >= 4 and a canonical, complete (trace, span) pair —
// non-canonical IDs fall back to JSON, which round-trips any string
// byte-for-byte instead of silently rewriting it.
func binaryEligible(m *Message, version int) bool {
	if version < 3 {
		return false
	}
	switch {
	case m.Broadcast != nil:
		b := m.Broadcast
		if !fitsUint32(b.Round) || len(b.Params) > maxBinaryValues {
			return false
		}
		return ctxEligible(b.TraceID, b.SpanID, version)
	case m.Upload != nil:
		u := m.Upload
		if !fitsUint32(u.Round) || !fitsUint32(u.VehicleID) || len(u.Values) > maxBinaryValues {
			return false
		}
		return ctxEligible(u.TraceID, u.SpanID, version)
	case m.Gather != nil:
		if version < FleetVersion || len(m.Gather.Uploads) == 0 {
			return false
		}
		size := 6 // magic, kind, count u32
		for i := range m.Gather.Uploads {
			u := &m.Gather.Uploads[i]
			// Any trace context sends the whole gather to JSON: the
			// binary layout has no per-upload context slot.
			if u.TraceID != "" || u.SpanID != "" {
				return false
			}
			if !fitsUint32(u.Round) || !fitsUint32(u.VehicleID) {
				return false
			}
			size += 12 + 8*len(u.Values)
			if size > MaxMessageSize {
				return false
			}
		}
		return true
	}
	return false
}

// ctxEligible reports whether a (trace, span) pair fits a binary body at
// the negotiated version: absent entirely (the pre-v4 kinds), or — at
// version >= 4 — a complete pair of canonical nonzero IDs.
func ctxEligible(trace, span string, version int) bool {
	if trace == "" && span == "" {
		return true
	}
	if version < 4 {
		return false
	}
	t, okT := canonicalID(trace)
	s, okS := canonicalID(span)
	return okT && okS && t != 0 && s != 0
}

// canonicalID parses an ID in canonical wire form — exactly 16 lowercase
// hex digits — and reports whether it was one.
func canonicalID(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < 16; i++ {
		var d uint64
		switch c := s[i]; {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// formatID16 renders an ID in canonical wire form (the inverse of
// canonicalID); zero — "no context" — renders as "".
func formatID16(id uint64) string {
	if id == 0 {
		return ""
	}
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = "0123456789abcdef"[id&0xf]
		id >>= 4
	}
	return string(buf[:])
}

func fitsUint32(v int) bool { return v >= 0 && int64(v) <= math.MaxUint32 }

// binaryBodyLen returns the body length of a binary-eligible message.
func binaryBodyLen(m *Message) int {
	if b := m.Broadcast; b != nil {
		n := 10 + 8*len(b.Params)
		if b.TraceID != "" {
			n += 16
		}
		return n
	}
	if g := m.Gather; g != nil {
		n := 6
		for i := range g.Uploads {
			n += 12 + 8*len(g.Uploads[i].Values)
		}
		return n
	}
	u := m.Upload
	n := 14 + 8*len(u.Values)
	if u.TraceID != "" {
		n += 16
	}
	return n
}

// appendBinary encodes a binary-eligible message into dst.
func appendBinary(dst []byte, m *Message) []byte {
	if b := m.Broadcast; b != nil {
		if b.TraceID == "" {
			dst = append(dst, binaryMagic, binaryKindBroadcast)
		} else {
			trace, _ := canonicalID(b.TraceID)
			span, _ := canonicalID(b.SpanID)
			dst = append(dst, binaryMagic, binaryKindBroadcastCtx)
			dst = binary.LittleEndian.AppendUint64(dst, trace)
			dst = binary.LittleEndian.AppendUint64(dst, span)
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(b.Round))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Params)))
		for _, v := range b.Params {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
		return dst
	}
	if g := m.Gather; g != nil {
		dst = append(dst, binaryMagic, binaryKindGather)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(g.Uploads)))
		for i := range g.Uploads {
			u := &g.Uploads[i]
			dst = binary.LittleEndian.AppendUint32(dst, uint32(u.Round))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(u.VehicleID))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(u.Values)))
			for _, v := range u.Values {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
			}
		}
		return dst
	}
	u := m.Upload
	if u.TraceID == "" {
		dst = append(dst, binaryMagic, binaryKindUpload)
	} else {
		trace, _ := canonicalID(u.TraceID)
		span, _ := canonicalID(u.SpanID)
		dst = append(dst, binaryMagic, binaryKindUploadCtx)
		dst = binary.LittleEndian.AppendUint64(dst, trace)
		dst = binary.LittleEndian.AppendUint64(dst, span)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(u.Round))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(u.VehicleID))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(u.Values)))
	for _, v := range u.Values {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// parseBinary decodes a binary body (first byte already known to be
// binaryMagic). Every length is validated exactly: a body that is too
// short, too long, or over-counted is a frame-local error, mirroring the
// strictness JSON unmarshalling provides on the text path.
func parseBinary(body []byte) (*Message, error) {
	if len(body) < 2 {
		return nil, fmt.Errorf("protocol: binary body of %d bytes lacks a kind", len(body))
	}
	kind := body[1]
	rest := body[2:]
	readU32 := func() uint32 {
		v := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		return v
	}
	readU64 := func() uint64 {
		v := binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
		return v
	}
	// readCtx consumes the trace/span prefix of a context kind. Partial
	// or zero context is a frame-local error: only complete contexts ride
	// the binary path (see ctxEligible), so every accepted frame
	// re-encodes to identical bytes.
	readCtx := func(kindName string) (trace, span uint64, err error) {
		trace = readU64()
		span = readU64()
		if trace == 0 || span == 0 {
			return 0, 0, fmt.Errorf("protocol: binary %s carries a zero trace/span ID", kindName)
		}
		return trace, span, nil
	}
	switch kind {
	case binaryKindBroadcast, binaryKindBroadcastCtx:
		bc := &Broadcast{}
		minLen := 8
		if kind == binaryKindBroadcastCtx {
			minLen += 16
		}
		if len(rest) < minLen {
			return nil, fmt.Errorf("protocol: binary broadcast header truncated (%d bytes)", len(rest))
		}
		if kind == binaryKindBroadcastCtx {
			trace, span, err := readCtx("broadcast")
			if err != nil {
				return nil, err
			}
			bc.TraceID, bc.SpanID = formatID16(trace), formatID16(span)
		}
		bc.Round = int(readU32())
		count := readU32()
		if count > maxBinaryValues || len(rest) != 8*int(count) {
			return nil, fmt.Errorf("protocol: binary broadcast declares %d values in %d payload bytes", count, len(rest))
		}
		bc.Params = readFloats(rest, int(count))
		return &Message{Broadcast: bc}, nil
	case binaryKindUpload, binaryKindUploadCtx:
		up := &Upload{}
		minLen := 12
		if kind == binaryKindUploadCtx {
			minLen += 16
		}
		if len(rest) < minLen {
			return nil, fmt.Errorf("protocol: binary upload header truncated (%d bytes)", len(rest))
		}
		if kind == binaryKindUploadCtx {
			trace, span, err := readCtx("upload")
			if err != nil {
				return nil, err
			}
			up.TraceID, up.SpanID = formatID16(trace), formatID16(span)
		}
		up.Round = int(readU32())
		up.VehicleID = int(readU32())
		count := readU32()
		if count > maxBinaryValues || len(rest) != 8*int(count) {
			return nil, fmt.Errorf("protocol: binary upload declares %d values in %d payload bytes", count, len(rest))
		}
		up.Values = readFloats(rest, int(count))
		return &Message{Upload: up}, nil
	case binaryKindGather:
		if len(rest) < 4 {
			return nil, fmt.Errorf("protocol: binary gather header truncated (%d bytes)", len(rest))
		}
		count := readU32()
		if count == 0 || count > MaxMessageSize/12 {
			return nil, fmt.Errorf("protocol: binary gather declares %d uploads", count)
		}
		g := &Gather{Uploads: make([]Upload, 0, count)}
		for i := uint32(0); i < count; i++ {
			if len(rest) < 12 {
				return nil, fmt.Errorf("protocol: binary gather upload %d truncated (%d bytes)", i, len(rest))
			}
			var u Upload
			u.Round = int(readU32())
			u.VehicleID = int(readU32())
			n := readU32()
			if n > maxBinaryValues || len(rest) < 8*int(n) {
				return nil, fmt.Errorf("protocol: binary gather upload %d declares %d values in %d payload bytes", i, n, len(rest))
			}
			u.Values = readFloats(rest, int(n))
			rest = rest[8*int(n):]
			g.Uploads = append(g.Uploads, u)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("protocol: binary gather leaves %d trailing bytes", len(rest))
		}
		return &Message{Gather: g}, nil
	}
	return nil, fmt.Errorf("protocol: unknown binary message kind %d", kind)
}

func readFloats(b []byte, count int) []float64 {
	if count == 0 {
		return nil
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Write frames and writes one message in JSON form — the encoding every
// protocol revision accepts.
func Write(w io.Writer, m *Message) error {
	return writeFrame(w, m, 0)
}

// WriteVersion frames and writes one message under a negotiated protocol
// version: bulk messages (Broadcast, Upload) go out as binary bodies
// when the peer negotiated version >= 3, everything else (and every
// message to an older peer) as JSON.
func WriteVersion(w io.Writer, m *Message, version int) error {
	if !binaryEligible(m, version) {
		return writeFrame(w, m, 0)
	}
	if err := m.Validate(); err != nil {
		return err
	}
	body := appendBinary(make([]byte, 0, binaryBodyLen(m)), m)
	if len(body) > MaxMessageSize {
		return fmt.Errorf("protocol: %s message of %d bytes exceeds limit", m.kind(), len(body))
	}
	var header [headerLen]byte
	binary.BigEndian.PutUint32(header[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(header[4:], crc32.ChecksumIEEE(body))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("protocol: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("protocol: write body: %w", err)
	}
	return nil
}

// WriteCorrupt frames and writes one message with a deliberately wrong
// checksum, so the receiver's Read returns ErrCorruptFrame while the
// stream stays in sync. It exists for the fault-injection layer
// (internal/chaos via transport's Faulter): end-to-end tests exercise the
// real detection path instead of simulating it.
func WriteCorrupt(w io.Writer, m *Message) error {
	return writeFrame(w, m, 1)
}

// writeFrame marshals, frames, and writes m; crcFlip is XORed into the
// checksum (0 for an honest frame).
func writeFrame(w io.Writer, m *Message, crcFlip uint32) error {
	if err := m.Validate(); err != nil {
		return err
	}
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("protocol: marshal %s: %w", m.kind(), err)
	}
	if len(body) > MaxMessageSize {
		return fmt.Errorf("protocol: %s message of %d bytes exceeds limit", m.kind(), len(body))
	}
	var header [headerLen]byte
	binary.BigEndian.PutUint32(header[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(header[4:], crc32.ChecksumIEEE(body)^crcFlip)
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("protocol: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("protocol: write body: %w", err)
	}
	return nil
}

// Read reads and validates one framed message, accepting every body
// encoding the current protocol revision knows. A checksum mismatch
// returns an error wrapping ErrCorruptFrame with the frame fully
// consumed, so the caller may continue reading the stream.
func Read(r io.Reader) (*Message, error) {
	return ReadVersion(r, Version)
}

// ReadVersion is Read restricted to the body encodings of the given
// protocol version: a v2 reader handed a v3 binary frame returns a
// frame-local error (the frame is fully consumed, the stream stays in
// sync) instead of attempting to parse it.
func ReadVersion(r io.Reader, version int) (*Message, error) {
	var header [headerLen]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	size := binary.BigEndian.Uint32(header[:4])
	sum := binary.BigEndian.Uint32(header[4:])
	if size > MaxMessageSize {
		return nil, fmt.Errorf("protocol: incoming frame of %d bytes exceeds limit", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("protocol: read body: %w", err)
	}
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: %d-byte frame, checksum %08x want %08x", ErrCorruptFrame, size, got, sum)
	}
	if len(body) > 0 && body[0] == binaryMagic {
		if version < 3 {
			return nil, fmt.Errorf("protocol: binary frame not supported at negotiated version %d", version)
		}
		m, err := parseBinary(body)
		if err != nil {
			return nil, err
		}
		if err := m.Validate(); err != nil {
			return nil, err
		}
		return m, nil
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("protocol: unmarshal: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
