package protocol

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	params := make([]float64, 257)
	for i := range params {
		params[i] = rng.NormFloat64()
	}
	params[0] = math.Inf(-1)
	params[1] = math.Copysign(0, -1)
	for _, m := range []*Message{
		{Broadcast: &Broadcast{Round: 3, Params: params}},
		{Upload: &Upload{Round: 9, VehicleID: 41, Values: params[:5]}},
		{Upload: &Upload{Round: 1, VehicleID: 0}},
	} {
		var buf bytes.Buffer
		if err := WriteVersion(&buf, m, Version); err != nil {
			t.Fatal(err)
		}
		if got := buf.Bytes()[headerLen]; got != binaryMagic {
			t.Fatalf("v3 bulk frame body starts with %#x, want binary magic", got)
		}
		if want := EncodedSizeVersion(m, Version) + 4; buf.Len() != want {
			// EncodedSizeVersion counts 4 length bytes but not the CRC,
			// matching EncodedSize's convention.
			t.Fatalf("frame is %d bytes, EncodedSizeVersion promises %d", buf.Len(), want)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("binary round trip changed the message: %+v -> %+v", m, got)
		}
	}
}

func TestBinaryPreservesNaNBits(t *testing.T) {
	payload := math.Float64frombits(0x7ff8_dead_beef_0001) // NaN with payload bits
	m := &Message{Upload: &Upload{Round: 1, VehicleID: 2, Values: []float64{payload}}}
	var buf bytes.Buffer
	if err := WriteVersion(&buf, m, Version); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if bits := math.Float64bits(got.Upload.Values[0]); bits != 0x7ff8_dead_beef_0001 {
		t.Fatalf("NaN bits changed: %016x", bits)
	}
	// The JSON path cannot carry this value at all — the binary encoding
	// is strictly more faithful, not differently lossy.
	if err := Write(&buf, m); err == nil {
		t.Fatal("JSON encoding of NaN unexpectedly succeeded")
	}
}

func TestWriteVersionFallsBackToJSON(t *testing.T) {
	cases := []*Message{
		{Hello: &Hello{Version: Version, VehicleID: 1}},                  // non-bulk
		{Finished: &Finished{Rounds: 2}},                                 // non-bulk
		{Broadcast: &Broadcast{Round: -1, Params: []float64{1}}},         // round outside u32
		{Upload: &Upload{Round: 1, VehicleID: -5, Values: []float64{1}}}, // id outside u32
	}
	for _, m := range cases {
		var buf bytes.Buffer
		if err := WriteVersion(&buf, m, Version); err != nil {
			t.Fatal(err)
		}
		if buf.Bytes()[headerLen] == binaryMagic {
			t.Fatalf("%s unexpectedly encoded in binary", m.Kind())
		}
		got, err := ReadVersion(bytes.NewReader(buf.Bytes()), 2)
		if err != nil {
			t.Fatalf("v2 reader rejected the JSON fallback: %v", err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("fallback round trip changed the message: %+v -> %+v", m, got)
		}
	}
	// A v2-negotiated writer never emits binary, whatever the message.
	var buf bytes.Buffer
	bulk := &Message{Broadcast: &Broadcast{Round: 1, Params: []float64{1, 2}}}
	if err := WriteVersion(&buf, bulk, 2); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[headerLen] == binaryMagic {
		t.Fatal("v2-negotiated write emitted a binary body")
	}
}

func TestV2ReaderRejectsBinaryFrameCleanly(t *testing.T) {
	m := &Message{Broadcast: &Broadcast{Round: 1, Params: []float64{1, 2, 3}}}
	var buf bytes.Buffer
	if err := WriteVersion(&buf, m, Version); err != nil {
		t.Fatal(err)
	}
	// Append a JSON frame behind the binary one: the v2 reader must
	// consume the rejected frame entirely and stay in sync.
	tail := &Message{Finished: &Finished{Rounds: 4}}
	if err := Write(&buf, tail); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	if _, err := ReadVersion(r, 2); err == nil || !strings.Contains(err.Error(), "binary frame") {
		t.Fatalf("v2 read of a binary frame: err=%v, want a binary-frame rejection", err)
	}
	got, err := ReadVersion(r, 2)
	if err != nil {
		t.Fatalf("stream out of sync after rejected binary frame: %v", err)
	}
	if got.Finished == nil || got.Finished.Rounds != 4 {
		t.Fatalf("wrong trailing message: %+v", got)
	}
}

func TestParseBinaryRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"bare magic":       {binaryMagic},
		"unknown kind":     {binaryMagic, 0x7f, 0, 0, 0, 0},
		"truncated header": {binaryMagic, binaryKindBroadcast, 1, 0},
		"count mismatch":   {binaryMagic, binaryKindBroadcast, 1, 0, 0, 0, 2, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8},
		"upload short":     {binaryMagic, binaryKindUpload, 1, 0, 0, 0, 2, 0, 0, 0},
		"excess payload":   append([]byte{binaryMagic, binaryKindUpload, 1, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0}, make([]byte, 16)...),
	}
	for name, body := range cases {
		if _, err := parseBinary(body); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestBinaryWireBytesRatio pins the bandwidth win that motivates the v3
// encoding: at 1k parameters the binary Broadcast frame must be at least
// 2.2x smaller than its JSON form. (A >= 3x cut is information-
// theoretically out of reach: the binary payload is already at the
// 8-byte-per-float floor, while JSON spends ~20 bytes on a decimal
// float64 — see DESIGN.md §13.)
func TestBinaryWireBytesRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	params := make([]float64, 1000)
	for i := range params {
		params[i] = rng.NormFloat64()
	}
	m := &Message{Broadcast: &Broadcast{Round: 1, Params: params}}
	jsonBytes := EncodedSize(m)
	binBytes := EncodedSizeVersion(m, Version)
	if binBytes >= jsonBytes {
		t.Fatalf("binary (%d B) not smaller than JSON (%d B)", binBytes, jsonBytes)
	}
	if ratio := float64(jsonBytes) / float64(binBytes); ratio < 2.2 {
		t.Errorf("wire ratio %.2fx (json %d B / binary %d B), want >= 2.2x", ratio, jsonBytes, binBytes)
	}
}

// BenchmarkWireCodec measures encode+decode ns and bytes for the bulk
// Broadcast message at realistic parameter counts, JSON against binary.
// scripts/bench.sh --matrix feeds these entries to benchreport's
// binary_vs_json ratio gate.
func BenchmarkWireCodec(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{100, 1000} {
		params := make([]float64, n)
		for i := range params {
			params[i] = rng.NormFloat64()
		}
		m := &Message{Broadcast: &Broadcast{Round: 5, Params: params}}
		for _, enc := range []struct {
			name    string
			version int
		}{{"json", 2}, {"binary", Version}} {
			b.Run(fmt.Sprintf("params=%d/enc=%s", n, enc.name), func(b *testing.B) {
				var buf bytes.Buffer
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					buf.Reset()
					if err := WriteVersion(&buf, m, enc.version); err != nil {
						b.Fatal(err)
					}
					if _, err := ReadVersion(&buf, enc.version); err != nil {
						b.Fatal(err)
					}
				}
				b.SetBytes(int64(EncodedSizeVersion(m, enc.version)))
			})
		}
	}
}
