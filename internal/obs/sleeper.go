package obs

import (
	"sync"
	"time"
)

// Sleeper abstracts blocking delays so libraries never call time.Sleep
// directly: production code injects RealSleeper, tests inject a
// ManualSleeper and run fault/backoff schedules without ever sleeping.
// The wallclock lint analyzer confines time.Sleep to this package, the
// same way it confines time.Now to NewRealClock.
type Sleeper interface {
	// Sleep blocks for (at least) d; d <= 0 returns immediately.
	Sleep(d time.Duration)
}

// RealSleeper sleeps on the runtime timer — the production Sleeper.
type RealSleeper struct{}

// Sleep implements Sleeper.
func (RealSleeper) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// ManualSleeper is a deterministic Sleeper for tests: it never blocks,
// records every requested delay, and optionally advances a linked
// ManualClock so traces still show time passing. Safe for concurrent use.
type ManualSleeper struct {
	// Clock, when non-nil, advances by each slept duration.
	Clock *ManualClock

	mu    sync.Mutex      // guards slept
	slept []time.Duration // guarded by mu
}

// Sleep implements Sleeper: it returns immediately after recording d.
func (s *ManualSleeper) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.slept = append(s.slept, d)
	s.mu.Unlock()
	if s.Clock != nil {
		s.Clock.Advance(d)
	}
}

// Slept returns a copy of every recorded delay, in call order.
func (s *ManualSleeper) Slept() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.slept...)
}
