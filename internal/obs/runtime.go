package obs

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/parallel"
)

// RuntimeSampler publishes Go runtime health — heap, goroutines, GC — as
// registry gauges, either on demand (Sample) or periodically on a
// background goroutine (Start/Stop) for long runs. Gauges published:
//
//	runtime.heap_alloc_bytes    live heap bytes
//	runtime.heap_objects        live heap objects
//	runtime.total_alloc_bytes   cumulative allocated bytes
//	runtime.goroutines          current goroutine count
//	runtime.gc_num              completed GC cycles
//	runtime.gc_pause_total_ns   cumulative stop-the-world pause
//
// runtime.ReadMemStats briefly stops the world, so the sampling interval
// should stay coarse (the 1 s default is safe for multi-second runs).
type RuntimeSampler struct {
	reg  *Registry
	stop chan struct{}
	g    parallel.Group

	heapAlloc, heapObjects, totalAlloc *Gauge
	goroutines, gcNum, gcPause         *Gauge

	profMu      sync.Mutex
	captureProf bool   // guarded by profMu
	lastProf    []byte // guarded by profMu
	lastProfAt  int64  // guarded by profMu; sampler clock reading, ns
	profClock   Clock  // guarded by profMu
}

// DefaultSampleInterval is the Start interval used when none is given.
const DefaultSampleInterval = time.Second

// NewRuntimeSampler binds a sampler to a registry (nil registry → all
// samples are dropped, but the sampler stays usable).
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	return &RuntimeSampler{
		reg:         reg,
		heapAlloc:   reg.Gauge("runtime.heap_alloc_bytes"),
		heapObjects: reg.Gauge("runtime.heap_objects"),
		totalAlloc:  reg.Gauge("runtime.total_alloc_bytes"),
		goroutines:  reg.Gauge("runtime.goroutines"),
		gcNum:       reg.Gauge("runtime.gc_num"),
		gcPause:     reg.Gauge("runtime.gc_pause_total_ns"),
	}
}

// Sample reads the runtime once and updates the gauges.
func (s *RuntimeSampler) Sample() {
	if s == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.heapAlloc.Set(int64(ms.HeapAlloc))
	s.heapObjects.Set(int64(ms.HeapObjects))
	s.totalAlloc.Set(int64(ms.TotalAlloc))
	s.goroutines.Set(int64(runtime.NumGoroutine()))
	s.gcNum.Set(int64(ms.NumGC))
	s.gcPause.Set(int64(ms.PauseTotalNs))
	s.captureProfile()
}

// EnableProfiles turns on periodic in-memory heap-profile capture: every
// Sample (manual or ticker-driven) also snapshots the pprof heap profile
// so the debugz /profilez endpoint can serve the most recent one without
// stopping the process. The clock stamps each capture (nil → stamp 0).
// Call before Start; captures cost one pprof serialisation per interval.
func (s *RuntimeSampler) EnableProfiles(clock Clock) {
	if s == nil {
		return
	}
	s.profMu.Lock()
	s.captureProf = true
	s.profClock = clock
	s.profMu.Unlock()
}

// LastProfile returns the most recent heap-profile capture and its clock
// stamp, or (nil, 0) before the first capture or when disabled.
func (s *RuntimeSampler) LastProfile() ([]byte, int64) {
	if s == nil {
		return nil, 0
	}
	s.profMu.Lock()
	defer s.profMu.Unlock()
	return s.lastProf, s.lastProfAt
}

// captureProfile snapshots the heap profile when capture is enabled.
func (s *RuntimeSampler) captureProfile() {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	if !s.captureProf {
		return
	}
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		return // profile capture is best-effort; keep the previous one
	}
	s.lastProf = buf.Bytes()
	if s.profClock != nil {
		s.lastProfAt = int64(s.profClock.Now())
	}
}

// Start samples every interval (<= 0 selects DefaultSampleInterval) on a
// pool-tracked goroutine until Stop. Starting twice is a no-op.
func (s *RuntimeSampler) Start(interval time.Duration) {
	if s == nil || s.stop != nil {
		return
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	s.stop = make(chan struct{})
	stop := s.stop
	s.g.Go(func() error {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				s.Sample()
			case <-stop:
				return nil
			}
		}
	})
}

// Stop halts background sampling (if started), waits for the goroutine to
// exit, and records one final sample so shutdown state is captured.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	if s.stop != nil {
		close(s.stop)
		_ = s.g.Wait() // the sampling loop only returns nil
		s.stop = nil
	}
	s.Sample()
}
