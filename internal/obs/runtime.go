package obs

import (
	"runtime"
	"time"

	"repro/internal/parallel"
)

// RuntimeSampler publishes Go runtime health — heap, goroutines, GC — as
// registry gauges, either on demand (Sample) or periodically on a
// background goroutine (Start/Stop) for long runs. Gauges published:
//
//	runtime.heap_alloc_bytes    live heap bytes
//	runtime.heap_objects        live heap objects
//	runtime.total_alloc_bytes   cumulative allocated bytes
//	runtime.goroutines          current goroutine count
//	runtime.gc_num              completed GC cycles
//	runtime.gc_pause_total_ns   cumulative stop-the-world pause
//
// runtime.ReadMemStats briefly stops the world, so the sampling interval
// should stay coarse (the 1 s default is safe for multi-second runs).
type RuntimeSampler struct {
	reg  *Registry
	stop chan struct{}
	g    parallel.Group

	heapAlloc, heapObjects, totalAlloc *Gauge
	goroutines, gcNum, gcPause         *Gauge
}

// DefaultSampleInterval is the Start interval used when none is given.
const DefaultSampleInterval = time.Second

// NewRuntimeSampler binds a sampler to a registry (nil registry → all
// samples are dropped, but the sampler stays usable).
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	return &RuntimeSampler{
		reg:         reg,
		heapAlloc:   reg.Gauge("runtime.heap_alloc_bytes"),
		heapObjects: reg.Gauge("runtime.heap_objects"),
		totalAlloc:  reg.Gauge("runtime.total_alloc_bytes"),
		goroutines:  reg.Gauge("runtime.goroutines"),
		gcNum:       reg.Gauge("runtime.gc_num"),
		gcPause:     reg.Gauge("runtime.gc_pause_total_ns"),
	}
}

// Sample reads the runtime once and updates the gauges.
func (s *RuntimeSampler) Sample() {
	if s == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.heapAlloc.Set(int64(ms.HeapAlloc))
	s.heapObjects.Set(int64(ms.HeapObjects))
	s.totalAlloc.Set(int64(ms.TotalAlloc))
	s.goroutines.Set(int64(runtime.NumGoroutine()))
	s.gcNum.Set(int64(ms.NumGC))
	s.gcPause.Set(int64(ms.PauseTotalNs))
}

// Start samples every interval (<= 0 selects DefaultSampleInterval) on a
// pool-tracked goroutine until Stop. Starting twice is a no-op.
func (s *RuntimeSampler) Start(interval time.Duration) {
	if s == nil || s.stop != nil {
		return
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	s.stop = make(chan struct{})
	stop := s.stop
	s.g.Go(func() error {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				s.Sample()
			case <-stop:
				return nil
			}
		}
	})
}

// Stop halts background sampling (if started), waits for the goroutine to
// exit, and records one final sample so shutdown state is captured.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	if s.stop != nil {
		close(s.stop)
		_ = s.g.Wait() // the sampling loop only returns nil
		s.stop = nil
	}
	s.Sample()
}
