// Package debugz is the live introspection plane: a small stdlib-only
// net/http server that exposes a running lcofl process's observability
// state while the session is still in flight — the metrics registry
// (/metricz), liveness (/healthz), round-engine state (/roundz), the
// most recent periodic heap profile (/profilez), and the standard
// net/http/pprof handlers (/debug/pprof/).
//
// The server is opt-in (-debug-addr on serve/vehicle/dist) and follows
// the obs nil-discipline: a nil *Server is a no-op on every method, so
// command wiring can hold one unconditionally. It binds localhost-style
// addresses chosen by the operator; it performs no authentication, so
// the flag must never be pointed at a public interface.
//
// debugz is one of the two sanctioned rawgo/wallclock carve-outs beyond
// the core concurrency packages (see cmd/lcofl-lint): the HTTP accept
// loop is a goroutine-per-server by design, and /healthz reports a real
// wall-clock timestamp so operators can correlate a curl with system
// logs — neither can leak nondeterminism into traces or figures because
// nothing here feeds them.
package debugz

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config wires a Server to a process's observability state. Every field
// except Addr may be nil/zero; the corresponding endpoint then serves an
// empty-but-valid response instead of failing.
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:9090" or
	// "127.0.0.1:0" to let the kernel pick a port (see Server.Addr).
	Addr string
	// Registry backs /metricz.
	Registry *obs.Registry
	// Sampler backs /profilez (its periodic captures are served as the
	// latest heap profile).
	Sampler *obs.RuntimeSampler
	// Clock stamps /healthz uptime (nil → uptime reported as 0).
	Clock obs.Clock
}

// Server is a running introspection endpoint. The zero of *Server (nil)
// disables everything, matching the obs handle discipline.
type Server struct {
	cfg     Config
	ln      net.Listener
	httpSrv *http.Server
	startAt time.Duration

	// roundz holds the late-bound round-state provider (a func() any);
	// commands install it once the node.Server exists.
	roundz atomic.Value
	// sessionz holds the late-bound fleet-state provider, installed by
	// commands running a multi-session fleet.
	sessionz atomic.Value

	mu     sync.Mutex // guards serveErr
	closed atomic.Bool
	// serveErr records a non-shutdown accept-loop failure. guarded by mu
	serveErr error
}

// Start binds cfg.Addr and begins serving. The returned server is live
// before Start returns (the listener is open), so tests and CI can curl
// it immediately. A nil return with a nil error never happens: callers
// get either a live server or the bind error.
func Start(cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("debugz: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{cfg: cfg, ln: ln}
	if cfg.Clock != nil {
		s.startAt = cfg.Clock.Now()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metricz", s.handleMetricz)
	mux.HandleFunc("/roundz", s.handleRoundz)
	mux.HandleFunc("/sessionz", s.handleSessionz)
	mux.HandleFunc("/profilez", s.handleProfilez)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.httpSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.serve()
	return s, nil
}

// serve runs the accept loop until Close. It is the server's single
// long-lived goroutine; errors other than the expected shutdown signal
// are kept for Close to report.
func (s *Server) serve() {
	err := s.httpSrv.Serve(s.ln)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		s.mu.Lock()
		s.serveErr = err
		s.mu.Unlock()
	}
}

// Addr returns the bound listen address (resolving ":0" to the actual
// port), or "" on a nil server.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// SetRoundz installs the /roundz state provider — typically a closure
// over node.Server.Status. Late binding keeps debugz free of a node
// dependency and lets commands start the listener before the session
// exists. Safe to call at any time, including on a nil server.
func (s *Server) SetRoundz(fn func() any) {
	if s == nil || fn == nil {
		return
	}
	s.roundz.Store(fn)
}

// SetSessionz installs the /sessionz state provider — typically a
// closure over node.Fleet.Status, giving one endpoint for every
// concurrent session's admission and engine state. Safe to call at any
// time, including on a nil server.
func (s *Server) SetSessionz(fn func() any) {
	if s == nil || fn == nil {
		return
	}
	s.sessionz.Store(fn)
}

// Close shuts the listener down and reports any accept-loop failure.
// Nil-safe and idempotent.
func (s *Server) Close() error {
	if s == nil || !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := s.httpSrv.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.serveErr != nil {
		return s.serveErr
	}
	return err
}

// handleHealthz reports liveness, session-clock uptime, and a wall-clock
// timestamp for correlating with system logs.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	uptime := int64(0)
	if s.cfg.Clock != nil {
		uptime = int64(s.cfg.Clock.Now() - s.startAt)
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]any{
		"status":      "ok",
		"uptime_ns":   uptime,
		"now_unix_ns": time.Now().UnixNano(),
	})
}

// handleMetricz streams the registry snapshot in the same JSON shape the
// -metrics flag writes at exit, so tracereport -check-metrics can read a
// live capture unchanged.
func (s *Server) handleMetricz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.cfg.Registry == nil {
		_, _ = w.Write([]byte("{}\n"))
		return
	}
	_ = s.cfg.Registry.WriteJSON(w)
}

// handleRoundz serves the installed round-state provider, or 404 when
// the process has no round engine (a vehicle before SetRoundz).
func (s *Server) handleRoundz(w http.ResponseWriter, _ *http.Request) {
	fn, _ := s.roundz.Load().(func() any)
	if fn == nil {
		http.Error(w, "no round state registered", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, fn())
}

// handleSessionz serves the installed fleet-state provider, or 404 when
// the process runs no multi-session fleet.
func (s *Server) handleSessionz(w http.ResponseWriter, _ *http.Request) {
	fn, _ := s.sessionz.Load().(func() any)
	if fn == nil {
		http.Error(w, "no fleet state registered", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, fn())
}

// handleProfilez serves the most recent periodic heap-profile capture
// (RuntimeSampler.EnableProfiles), or 404 before the first capture.
func (s *Server) handleProfilez(w http.ResponseWriter, _ *http.Request) {
	prof, at := s.cfg.Sampler.LastProfile()
	if prof == nil {
		http.Error(w, "no profile captured yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Captured-At-Ns", fmt.Sprintf("%d", at))
	_, _ = w.Write(prof)
}

// writeJSON writes v as indented JSON; an encode failure surfaces as a
// 500 so a curl never sees a silent half-response.
func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
