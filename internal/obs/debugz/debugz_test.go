package debugz

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// get fetches a path from the server and returns status + body.
func get(t *testing.T, srv *Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, body
}

func TestEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("test.hits").Add(3)
	clock := &obs.ManualClock{}
	clock.Set(5 * time.Second)
	sampler := obs.NewRuntimeSampler(reg)
	sampler.EnableProfiles(clock)

	srv, err := Start(Config{Addr: "127.0.0.1:0", Registry: reg, Sampler: sampler, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	// /healthz is live immediately and reports session-clock uptime.
	clock.Advance(2 * time.Second)
	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", code, body)
	}
	var health struct {
		Status   string `json:"status"`
		UptimeNs int64  `json:"uptime_ns"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("healthz json: %v in %s", err, body)
	}
	if health.Status != "ok" || health.UptimeNs != int64(2*time.Second) {
		t.Fatalf("unexpected healthz %+v", health)
	}

	// /metricz serves the live registry snapshot.
	code, body = get(t, srv, "/metricz")
	if code != http.StatusOK || !strings.Contains(string(body), `"test.hits"`) {
		t.Fatalf("/metricz status %d body %s", code, body)
	}

	// /roundz 404s until a provider is installed, then serves it.
	if code, _ := get(t, srv, "/roundz"); code != http.StatusNotFound {
		t.Fatalf("/roundz before SetRoundz: status %d, want 404", code)
	}
	srv.SetRoundz(func() any { return map[string]int{"round": 2} })
	code, body = get(t, srv, "/roundz")
	if code != http.StatusOK || !strings.Contains(string(body), `"round": 2`) {
		t.Fatalf("/roundz status %d body %s", code, body)
	}

	// /sessionz 404s until a fleet provider is installed, then serves the
	// multi-session admission snapshot.
	if code, _ := get(t, srv, "/sessionz"); code != http.StatusNotFound {
		t.Fatalf("/sessionz before SetSessionz: status %d, want 404", code)
	}
	srv.SetSessionz(func() any { return map[string]int{"admitted": 7} })
	code, body = get(t, srv, "/sessionz")
	if code != http.StatusOK || !strings.Contains(string(body), `"admitted": 7`) {
		t.Fatalf("/sessionz status %d body %s", code, body)
	}

	// /profilez 404s before the first capture, then serves the snapshot.
	if code, _ := get(t, srv, "/profilez"); code != http.StatusNotFound {
		t.Fatalf("/profilez before capture: status %d, want 404", code)
	}
	sampler.Sample()
	code, body = get(t, srv, "/profilez")
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("/profilez status %d, %d bytes", code, len(body))
	}

	// pprof index responds (the handlers are mounted on our mux).
	if code, _ := get(t, srv, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

func TestNilServerIsNoOp(t *testing.T) {
	var srv *Server
	if srv.Addr() != "" {
		t.Fatal("nil Addr should be empty")
	}
	srv.SetRoundz(func() any { return nil })
	srv.SetSessionz(func() any { return nil })
	if err := srv.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	srv, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// /metricz with no registry would have served "{}" — after close the
	// port must refuse connections.
	if _, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}
