package obs

import "strconv"

// Trace-context propagation.
//
// A distributed session (lcofl serve + N vehicle processes) writes one
// JSONL trace per process. To merge them into a single causal timeline
// (cmd/tracereport -merge) every process must agree on WHICH trace a
// span belongs to and WHO its parent is — without coordination and
// without randomness, because traces must stay byte-identical under
// ManualClock. Both properties fall out of deriving every ID from data
// the processes already share:
//
//   - the session trace ID is a splitmix64 hash of the scheme seed, so
//     the fusion centre and every vehicle compute the same value from
//     the Setup message they already exchange;
//   - span IDs are splitmix64 folds of (trace, span kind, round,
//     vehicle, ...), so the same logical operation has the same ID in
//     every process and across reruns.
//
// IDs travel on the wire as canonical 16-digit lowercase hex strings in
// JSON frames and as raw little-endian u64 in the v4 binary frames (see
// internal/protocol); zero is "no context" and is never emitted.

// SpanContext names one span within a session trace. The zero value
// means "no context" and is what disabled paths carry.
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether both components are set.
func (c SpanContext) Valid() bool { return c.Trace != 0 && c.Span != 0 }

// mix64 is the splitmix64 finaliser: a fast, high-quality 64-bit mixing
// permutation (Vigna 2015). Deterministic by construction — exactly what
// ID derivation needs, and unrelated to the field/crypto seeding paths.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// traceSalt separates the trace-ID hash domain from other consumers of
// the session seed (field element sampling, chaos schedules).
const traceSalt = 0x6c636f666c2d7472 // "lcofl-tr"

// TraceIDFromSeed derives the session trace ID from a scheme or session
// seed. Never returns 0, so a derived ID is always Valid as a trace.
func TraceIDFromSeed(seed int64) uint64 {
	id := mix64(uint64(seed) ^ traceSalt)
	if id == 0 {
		return traceSalt
	}
	return id
}

// DeriveSpan folds a span kind and discriminating parts (round, vehicle
// ID, attempt, ...) into the trace ID. Same inputs, same ID — in every
// process. Never returns 0.
func DeriveSpan(trace uint64, kind string, parts ...uint64) uint64 {
	h := trace
	for i := 0; i < len(kind); i++ {
		h = mix64(h ^ uint64(kind[i]))
	}
	for _, p := range parts {
		h = mix64(h ^ p)
	}
	if h == 0 {
		return traceSalt
	}
	return h
}

// FormatID renders an ID in the canonical wire form: 16 lowercase hex
// digits, zero-padded. Zero (no context) renders as "".
func FormatID(id uint64) string {
	if id == 0 {
		return ""
	}
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = "0123456789abcdef"[id&0xf]
		id >>= 4
	}
	return string(buf[:])
}

// ParseID is the liberal inverse of FormatID: it accepts any hex string
// that fits in 64 bits and returns 0 (no context) for anything else —
// never an error, because trace context is best-effort metadata and a
// malformed ID must not fail a protocol read.
func ParseID(s string) uint64 {
	if s == "" {
		return 0
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return v
}

// CtxFields builds the trace/span/parent fields attached to an emitted
// event. Zero components are skipped, so call sites can pass whatever
// they have. Callers guard with TraceEnabled before building the slice —
// this helper allocates and must stay off disabled paths.
func CtxFields(c SpanContext, parent uint64) []Field {
	fields := make([]Field, 0, 3)
	if c.Trace != 0 {
		fields = append(fields, F("trace", FormatID(c.Trace)))
	}
	if c.Span != 0 {
		fields = append(fields, F("span", FormatID(c.Span)))
	}
	if parent != 0 {
		fields = append(fields, F("parent", FormatID(parent)))
	}
	return fields
}
