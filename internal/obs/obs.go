// Package obs is the repository's observability layer: typed runtime
// metrics (Registry), structured JSONL event tracing (Tracer), and
// runtime/GC sampling (RuntimeSampler) behind one nil-safe handle (Obs).
//
// Design constraints, in order:
//
//   - Zero cost when disabled. Every instrumented hot path holds a nil
//     *Obs (or nil *Counter/*Histogram) by default; all methods are
//     nil-receiver safe no-ops, so "observability off" costs one pointer
//     comparison and no allocation. scripts/bench.sh gates this with the
//     obs-overhead benchmark suite (BenchmarkAggregateObs).
//   - Deterministic traces under test. Timestamps come from an injected
//     monotonic Clock, never from the wall clock directly; tests drive a
//     ManualClock and obtain byte-identical traces. NewRealClock is the
//     ONLY sanctioned wall-clock read in the repository outside tests —
//     cmd/lcofl-lint's wallclock analyzer enforces that.
//   - Race-clean. Counters, gauges and histograms are lock-free atomics;
//     the tracer serialises emission behind one mutex, so instrumented
//     code may emit from worker-pool goroutines freely. Event ORDER in a
//     trace is only deterministic where emission is sequential (workers=1
//     or events emitted outside parallel fan-outs).
package obs

import (
	"sync/atomic"
	"time"
)

// Clock supplies monotonic timestamps as durations since an arbitrary
// epoch fixed at construction. Injecting the clock keeps traces
// deterministic under test (ManualClock) while production uses the
// monotonic wall clock (NewRealClock).
type Clock interface {
	// Now returns the time elapsed since the clock's epoch.
	Now() time.Duration
}

// realClock measures against a start instant captured at construction;
// time.Since reads the monotonic clock, so Now never jumps backwards.
type realClock struct {
	start time.Time
}

// NewRealClock returns a Clock whose epoch is the moment of the call.
// This constructor is the repository's single sanctioned wall-clock read
// outside tests (see cmd/lcofl-lint, wallclock analyzer).
func NewRealClock() Clock {
	return &realClock{start: time.Now()}
}

// Now implements Clock.
func (c *realClock) Now() time.Duration { return time.Since(c.start) }

// ManualClock is a deterministic Clock for tests: time moves only when
// the test advances it. The zero value starts at 0 and is ready to use;
// all methods are safe for concurrent use.
type ManualClock struct {
	ns atomic.Int64
}

// Now implements Clock.
func (c *ManualClock) Now() time.Duration { return time.Duration(c.ns.Load()) }

// Advance moves the clock forward by d (negative d is ignored).
func (c *ManualClock) Advance(d time.Duration) {
	if d > 0 {
		c.ns.Add(int64(d))
	}
}

// Set jumps the clock to an absolute offset from its epoch.
func (c *ManualClock) Set(d time.Duration) { c.ns.Store(int64(d)) }

// Field is one key/value pair attached to a trace event.
type Field struct {
	Key string
	Val any
}

// F builds a Field — shorthand for event emission call sites.
func F(key string, val any) Field { return Field{Key: key, Val: val} }

// Obs bundles a metrics registry, an event tracer and a clock into the
// single handle instrumented code carries. Any part may be nil; the nil
// *Obs disables everything. Construction wires the pieces; the struct is
// immutable afterwards, so reads need no synchronisation.
type Obs struct {
	reg   *Registry
	tr    *Tracer
	clock Clock
}

// New bundles the given pieces. Any argument may be nil; a nil clock
// stamps every event at 0 (fine for metrics-only use).
func New(reg *Registry, tr *Tracer, clock Clock) *Obs {
	return &Obs{reg: reg, tr: tr, clock: clock}
}

// Enabled reports whether any instrumentation is attached.
func (o *Obs) Enabled() bool { return o != nil }

// TraceEnabled reports whether events will actually be recorded — hot
// paths check it before building per-iteration field lists.
func (o *Obs) TraceEnabled() bool { return o != nil && o.tr != nil }

// Registry returns the metrics registry (nil when disabled).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the event tracer (nil when disabled).
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tr
}

// Now returns the clock reading, or 0 without a clock.
func (o *Obs) Now() time.Duration {
	if o == nil || o.clock == nil {
		return 0
	}
	return o.clock.Now()
}

// Counter resolves a named counter (nil-safe; nil when disabled).
// Call sites in loops should resolve once and reuse the handle.
func (o *Obs) Counter(name string) *Counter { return o.Registry().Counter(name) }

// Gauge resolves a named gauge (nil-safe; nil when disabled).
func (o *Obs) Gauge(name string) *Gauge { return o.Registry().Gauge(name) }

// Histogram resolves a named histogram (nil-safe; nil when disabled).
func (o *Obs) Histogram(name string, bounds []int64) *Histogram {
	return o.Registry().Histogram(name, bounds)
}

// Emit records one point event stamped with the current clock reading.
func (o *Obs) Emit(event string, fields ...Field) {
	if o == nil || o.tr == nil {
		return
	}
	o.tr.emit(o.Now(), event, 0, fields)
}

// EmitSpan records one already-timed operation: an event stamped at
// start with the given duration. Use it when the caller measured the
// interval itself (e.g. it needed the elapsed time for a histogram
// anyway); otherwise prefer Start/End.
func (o *Obs) EmitSpan(event string, start, dur time.Duration, fields ...Field) {
	if o == nil || o.tr == nil {
		return
	}
	o.tr.emit(start, event, dur, fields)
}

// Span is an in-flight timed operation. The zero value (from a disabled
// Obs) is a no-op. End emits one event named after the span carrying the
// start timestamp and dur_ns.
type Span struct {
	o      *Obs
	event  string
	start  time.Duration
	fields []Field
}

// Start opens a span. With tracing disabled it returns the no-op zero
// Span without reading the clock.
func (o *Obs) Start(event string, fields ...Field) Span {
	if o == nil || o.tr == nil {
		return Span{}
	}
	return Span{o: o, event: event, start: o.Now(), fields: fields}
}

// End closes the span, emitting its event with dur_ns = now − start and
// the union of the Start and End fields.
func (s Span) End(extra ...Field) {
	if s.o == nil {
		return
	}
	fields := s.fields
	if len(extra) > 0 {
		fields = append(append([]Field(nil), fields...), extra...)
	}
	s.o.tr.emit(s.start, s.event, s.o.Now()-s.start, fields)
}
