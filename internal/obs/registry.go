package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil *Counter
// is a no-op, so disabled instrumentation costs one nil check.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for the nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable instantaneous value. The nil *Gauge is
// a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the last stored value (0 for the nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bin distribution of int64 observations (latencies
// in nanoseconds, sizes in bytes). Observations are lock-free atomic
// increments; bounds are inclusive upper bin edges with an implicit
// overflow bin above the last bound. The nil *Histogram is a no-op.
type Histogram struct {
	bounds []int64
	bins   []atomic.Int64 // len(bounds)+1, last is overflow
	count  atomic.Int64
	sum    atomic.Int64
}

// NewHistogram builds a free-standing histogram (registries build theirs
// through Registry.Histogram). bounds must be strictly increasing.
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d", i))
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		bins:   make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.bins[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 for the nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// inside the containing bin; values in the overflow bin clamp to the last
// bound. It returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.snapshot().quantile(q)
}

// histData is a consistent-enough copy of the histogram counts. (Each bin
// load is atomic; a concurrent Observe may straddle the copy, which for
// monitoring-grade quantiles is acceptable.)
type histData struct {
	bounds []int64
	bins   []int64
	count  int64
	sum    int64
}

func (h *Histogram) snapshot() histData {
	d := histData{bounds: h.bounds, bins: make([]int64, len(h.bins)), count: h.count.Load(), sum: h.sum.Load()}
	for i := range h.bins {
		d.bins[i] = h.bins[i].Load()
	}
	return d
}

func (d histData) quantile(q float64) float64 {
	if d.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(d.count)
	var cum int64
	for i, n := range d.bins {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(d.bounds) { // overflow bin clamps
				return float64(d.bounds[len(d.bounds)-1])
			}
			lower := int64(0)
			if i > 0 {
				lower = d.bounds[i-1]
			}
			upper := d.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return float64(lower) + frac*float64(upper-lower)
		}
		cum += n
	}
	return float64(d.bounds[len(d.bounds)-1])
}

// ExpBuckets returns n strictly increasing bounds starting at start and
// growing by factor — the standard latency/size bin layout.
func ExpBuckets(start int64, factor float64, n int) []int64 {
	out := make([]int64, 0, n)
	v := float64(start)
	last := int64(0)
	for len(out) < n {
		b := int64(v)
		if b <= last {
			b = last + 1
		}
		out = append(out, b)
		last = b
		v *= factor
	}
	return out
}

// LatencyBuckets spans 1µs to ~17s doubling per bin — the default for
// duration histograms (nanosecond observations).
func LatencyBuckets() []int64 { return ExpBuckets(1_000, 2, 25) }

// SizeBuckets spans 64 B to ~1 GiB ×4 per bin — the default for byte-size
// histograms.
func SizeBuckets() []int64 { return ExpBuckets(64, 4, 13) }

// Registry is a concurrent name→metric map. Metric handles are created on
// first use and stable afterwards, so hot paths resolve once and then
// update lock-free. The nil *Registry returns nil (no-op) handles.
type Registry struct {
	mu       sync.Mutex            // guards the three handle maps
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls reuse the existing bins and ignore
// bounds).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Bucket is one non-empty histogram bin in a snapshot. Le is the
// inclusive upper bound (-1 for the overflow bin).
type Bucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistSnapshot is one histogram's state with precomputed percentiles.
type HistSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time JSON-serialisable copy of a registry.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			d := h.snapshot()
			hs := HistSnapshot{
				Count: d.count,
				Sum:   d.sum,
				P50:   d.quantile(0.50),
				P95:   d.quantile(0.95),
				P99:   d.quantile(0.99),
			}
			for i, n := range d.bins {
				if n == 0 {
					continue
				}
				le := int64(-1)
				if i < len(d.bounds) {
					le = d.bounds[i]
				}
				hs.Buckets = append(hs.Buckets, Bucket{Le: le, N: n})
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (map keys sorted by
// encoding/json, so output is deterministic for fixed metric values).
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal snapshot: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Names returns the sorted metric names of every kind — a convenience for
// tests and report tooling.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
