package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracer emits structured events as JSON Lines: one object per line with
// a monotonic timestamp ("t_ns"), the event name ("ev"), an optional
// duration ("dur_ns", spans only) and the event's fields flattened in.
// encoding/json marshals map keys in sorted order, so a trace produced
// with a ManualClock and sequential emission is byte-identical across
// runs — the determinism contract obs tests and cmd/tracereport rely on.
//
// Emission is serialised behind one mutex, so any goroutine may emit; the
// nil *Tracer drops everything. Events from concurrent worker-pool tasks
// are recorded race-free but in scheduling order, so fully deterministic
// trace FILES additionally require workers=1 (see the package comment).
type Tracer struct {
	mu    sync.Mutex    // guards w and err
	w     *bufio.Writer // guarded by mu
	clock Clock
	err   error // guarded by mu
}

// NewTracer wraps w (buffered) with timestamps from clock. A nil clock
// stamps every event at 0.
func NewTracer(w io.Writer, clock Clock) *Tracer {
	return &Tracer{w: bufio.NewWriter(w), clock: clock}
}

// Emit records one point event stamped with the tracer's own clock —
// for callers holding a bare *Tracer rather than an *Obs.
func (t *Tracer) Emit(event string, fields ...Field) {
	if t == nil {
		return
	}
	var at time.Duration
	if t.clock != nil {
		at = t.clock.Now()
	}
	t.emit(at, event, 0, fields)
}

// emit serialises and writes one record. dur 0 omits dur_ns (point
// events); spans pass their measured duration.
func (t *Tracer) emit(at time.Duration, event string, dur time.Duration, fields []Field) {
	if t == nil {
		return
	}
	rec := make(map[string]any, len(fields)+3)
	rec["t_ns"] = int64(at)
	rec["ev"] = event
	if dur != 0 {
		rec["dur_ns"] = int64(dur)
	}
	for _, f := range fields {
		if f.Key == "t_ns" || f.Key == "ev" || f.Key == "dur_ns" {
			continue // reserved keys win
		}
		rec[f.Key] = f.Val
	}
	data, err := json.Marshal(rec)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		if t.err == nil {
			t.err = fmt.Errorf("obs: marshal event %q: %w", event, err)
		}
		return
	}
	if t.err != nil {
		return // sink already failed; drop quietly, surfaced by Flush/Err
	}
	if _, err := t.w.Write(data); err != nil {
		t.err = err
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = err
	}
}

// Flush drains the buffer to the sink and returns the first emission or
// write error encountered so far.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Err returns the first emission or write error without flushing.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
