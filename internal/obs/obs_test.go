package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety drives every instrumentation entry point through nil
// receivers — the disabled configuration every hot path runs with by
// default must be a total no-op, not a panic.
func TestNilSafety(t *testing.T) {
	var o *Obs
	if o.Enabled() || o.TraceEnabled() {
		t.Fatal("nil Obs reports enabled")
	}
	if o.Now() != 0 {
		t.Fatal("nil Obs clock should read 0")
	}
	o.Emit("ev", F("k", 1))
	span := o.Start("span")
	span.End(F("x", 2))
	o.Counter("c").Inc()
	o.Counter("c").Add(5)
	if o.Counter("c").Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	o.Gauge("g").Set(3)
	o.Histogram("h", LatencyBuckets()).Observe(10)
	if got := o.Histogram("h", nil).Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v", got)
	}

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry returned live metrics")
	}
	if snap := r.Snapshot(); snap.Counters != nil {
		t.Fatal("nil registry snapshot non-empty")
	}

	var tr *Tracer
	tr.Emit("ev")
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	var s *RuntimeSampler
	s.Sample()
	s.Stop()
}

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	g := r.Gauge("level")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if r.Counter("hits") != c {
		t.Fatal("second resolve returned a different counter")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for v := int64(1); v <= 100; v++ {
		h.Observe(v) // 10 in (0,10], 90 in (10,100]
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	// rank(0.5)=50 → 40th of 90 obs in (10,100]: 10 + (40/90)*90 = 50.
	if got := h.Quantile(0.5); got != 50 {
		t.Fatalf("p50 = %v, want 50", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("p0 = %v, want 0", got)
	}
	// Overflow clamps to the last bound.
	h.Observe(5000)
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("p100 with overflow = %v, want 1000", got)
	}
	// An empty histogram answers 0.
	if got := NewHistogram([]int64{1}).Quantile(0.9); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
}

func TestExpBucketsStrictlyIncreasing(t *testing.T) {
	for _, b := range [][]int64{ExpBuckets(1, 1.01, 40), LatencyBuckets(), SizeBuckets()} {
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				t.Fatalf("bounds not increasing at %d: %v", i, b)
			}
		}
	}
}

// TestTracerDeterministic proves the determinism contract: the same
// emission sequence against a ManualClock yields byte-identical JSONL.
func TestTracerDeterministic(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		clk := &ManualClock{}
		o := New(nil, NewTracer(&buf, clk), clk)
		o.Emit("round.start", F("round", 1))
		clk.Advance(5 * time.Millisecond)
		span := o.Start("round", F("round", 1))
		clk.Advance(20 * time.Millisecond)
		span.End(F("failures", 0), F("zebra", "z"), F("alpha", "a"))
		o.Emit("round.end", F("round", 1))
		if err := o.Tracer().Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("traces differ:\n%s\nvs\n%s", a, b)
	}
	lines := strings.Split(strings.TrimSpace(a), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), a)
	}
	var span map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &span); err != nil {
		t.Fatal(err)
	}
	if span["ev"] != "round" || span["t_ns"] != float64(5*time.Millisecond) || span["dur_ns"] != float64(20*time.Millisecond) {
		t.Fatalf("span record wrong: %v", span)
	}
	if span["failures"] != float64(0) || span["alpha"] != "a" {
		t.Fatalf("span fields wrong: %v", span)
	}
}

// TestTracerReservedKeys checks user fields cannot clobber the record
// envelope.
func TestTracerReservedKeys(t *testing.T) {
	var buf bytes.Buffer
	clk := &ManualClock{}
	clk.Set(7)
	tr := NewTracer(&buf, clk)
	tr.Emit("x", F("ev", "spoof"), F("t_ns", 99))
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["ev"] != "x" || rec["t_ns"] != float64(7) {
		t.Fatalf("reserved keys clobbered: %v", rec)
	}
}

func TestTracerConcurrentEmitRaceFree(t *testing.T) {
	var buf bytes.Buffer
	clk := &ManualClock{}
	tr := NewTracer(&buf, clk)
	o := New(nil, tr, clk)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				o.Emit("tick", F("worker", w), F("i", i))
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1600 {
		t.Fatalf("got %d events, want 1600", len(lines))
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v", i+1, err)
		}
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	r.Gauge("b.gauge").Set(-2)
	h := r.Histogram("c.hist", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["a.count"] != 3 || snap.Gauges["b.gauge"] != -2 {
		t.Fatalf("snapshot wrong: %+v", snap)
	}
	hs := snap.Histograms["c.hist"]
	if hs.Count != 3 || hs.Sum != 555 || len(hs.Buckets) != 3 {
		t.Fatalf("hist snapshot wrong: %+v", hs)
	}
	if hs.Buckets[2].Le != -1 || hs.Buckets[2].N != 1 {
		t.Fatalf("overflow bucket wrong: %+v", hs.Buckets)
	}
	want := []string{"a.count", "b.gauge", "c.hist"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestManualClock(t *testing.T) {
	var c ManualClock
	if c.Now() != 0 {
		t.Fatal("zero clock not at 0")
	}
	c.Advance(time.Second)
	c.Advance(-time.Hour) // ignored
	if c.Now() != time.Second {
		t.Fatalf("clock = %v", c.Now())
	}
	c.Set(3 * time.Second)
	if c.Now() != 3*time.Second {
		t.Fatalf("clock = %v", c.Now())
	}
}

func TestRealClockMonotone(t *testing.T) {
	clk := NewRealClock()
	a := clk.Now()
	b := clk.Now()
	if b < a {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestRuntimeSampler(t *testing.T) {
	r := NewRegistry()
	s := NewRuntimeSampler(r)
	s.Sample()
	if r.Gauge("runtime.goroutines").Value() < 1 {
		t.Fatal("goroutine gauge not set")
	}
	if r.Gauge("runtime.heap_alloc_bytes").Value() <= 0 {
		t.Fatal("heap gauge not set")
	}
	// Background loop: start, let it breathe, stop — must not leak or race.
	s.Start(time.Millisecond)
	s.Start(time.Millisecond) // double-start is a no-op
	time.Sleep(5 * time.Millisecond)
	s.Stop()
	s.Stop() // double-stop is safe (one extra Sample)
}
