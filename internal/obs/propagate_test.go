package obs

import "testing"

func TestTraceIDFromSeedDeterministic(t *testing.T) {
	a := TraceIDFromSeed(42)
	b := TraceIDFromSeed(42)
	if a != b {
		t.Fatalf("same seed, different trace IDs: %x vs %x", a, b)
	}
	if a == 0 {
		t.Fatal("trace ID must never be zero")
	}
	if TraceIDFromSeed(43) == a {
		t.Fatal("distinct seeds should not collide on adjacent values")
	}
}

func TestDeriveSpanDiscriminates(t *testing.T) {
	tr := TraceIDFromSeed(7)
	seen := map[uint64]string{}
	add := func(label string, id uint64) {
		t.Helper()
		if id == 0 {
			t.Fatalf("%s derived a zero span ID", label)
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("span collision: %s vs %s", label, prev)
		}
		seen[id] = label
	}
	for round := uint64(0); round < 4; round++ {
		add("round", DeriveSpan(tr, "node.round", round))
		for v := uint64(0); v < 8; v++ {
			add("train", DeriveSpan(tr, "node.train", round, v))
			add("upload", DeriveSpan(tr, "node.upload", round, v))
		}
	}
	// The same derivation in a "different process" agrees bit for bit.
	if DeriveSpan(tr, "node.round", 2) != DeriveSpan(TraceIDFromSeed(7), "node.round", 2) {
		t.Fatal("derivation is not reproducible across independent trace handles")
	}
}

func TestFormatParseIDRoundTrip(t *testing.T) {
	for _, id := range []uint64{1, 0xdeadbeef, 0xffffffffffffffff, TraceIDFromSeed(0)} {
		s := FormatID(id)
		if len(s) != 16 {
			t.Fatalf("FormatID(%#x) = %q, want 16 hex digits", id, s)
		}
		if got := ParseID(s); got != id {
			t.Fatalf("ParseID(FormatID(%#x)) = %#x", id, got)
		}
	}
	if FormatID(0) != "" {
		t.Fatalf("FormatID(0) = %q, want empty", FormatID(0))
	}
	for _, bad := range []string{"", "zz", "not-hex", "10000000000000000"} {
		if ParseID(bad) != 0 {
			t.Fatalf("ParseID(%q) should be 0", bad)
		}
	}
}

func TestCtxFieldsSkipZeroComponents(t *testing.T) {
	full := CtxFields(SpanContext{Trace: 1, Span: 2}, 3)
	if len(full) != 3 || full[0].Key != "trace" || full[1].Key != "span" || full[2].Key != "parent" {
		t.Fatalf("unexpected fields: %+v", full)
	}
	if got := CtxFields(SpanContext{Trace: 1}, 0); len(got) != 1 || got[0].Key != "trace" {
		t.Fatalf("unexpected fields: %+v", got)
	}
	if got := CtxFields(SpanContext{}, 0); len(got) != 0 {
		t.Fatalf("zero context should yield no fields, got %+v", got)
	}
	if (SpanContext{Trace: 1}).Valid() || !(SpanContext{Trace: 1, Span: 2}).Valid() {
		t.Fatal("Valid misclassifies contexts")
	}
}
