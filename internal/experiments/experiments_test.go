package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quick shrinks every run so the whole suite stays test-sized.
func quick() Options {
	return Options{Vehicles: 40, Rounds: 6, Rows: 1200, Seed: 5}
}

func TestScenarioDefaults(t *testing.T) {
	sc := Scenario{}.withDefaults()
	if sc.Vehicles != 100 || sc.Batches != 16 || sc.Degree != 1 {
		t.Errorf("defaults wrong: %+v", sc)
	}
	if sc.RefRows%sc.Batches != 0 {
		t.Errorf("RefRows %d not a multiple of M", sc.RefRows)
	}
}

func TestRunUnknownVariant(t *testing.T) {
	sc := Scenario{Vehicles: 20, Rounds: 1, Rows: 600, Seed: 1}
	if _, err := sc.Run(Variant("nope")); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestRunAccurateAndLCoFL(t *testing.T) {
	sc := Scenario{Vehicles: 30, Rounds: 4, Rows: 1000, Seed: 2}
	ideal, err := sc.Run(Accurate)
	if err != nil {
		t.Fatal(err)
	}
	if len(ideal.Acc.Values) != 4 || len(ideal.TestEstimates) != len(ideal.TestLabels) {
		t.Fatalf("run shape wrong: %+v", ideal)
	}
	scM := sc
	scM.MaliciousFraction = 0.2
	out, err := scM.Run(LCoFL)
	if err != nil {
		t.Fatal(err)
	}
	if out.DecodeFailures != 0 {
		t.Errorf("decode failures: %d", out.DecodeFailures)
	}
	if out.SuspectedMalicious != 6 { // 20% of 30
		t.Errorf("suspected = %d, want 6", out.SuspectedMalicious)
	}
}

func TestFigureAddRowValidates(t *testing.T) {
	f := &Figure{Name: "x", Columns: []string{"a", "b"}}
	if err := f.AddRow(1); err == nil {
		t.Error("short row accepted")
	}
	if err := f.AddRow(1, 2); err != nil {
		t.Error(err)
	}
}

func TestFigureWriteTSV(t *testing.T) {
	f := &Figure{Name: "figX", Title: "demo", Columns: []string{"a", "b"}}
	f.AddNote("hello %d", 7)
	if err := f.AddRow(1, 2.5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{"# figX: demo", "# note: hello 7", "a\tb", "1\t2.5"} {
		if !strings.Contains(got, want) {
			t.Errorf("TSV missing %q:\n%s", want, got)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	fig, err := Fig4(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(fig.Rows))
	}
	if len(fig.Columns) != 4 {
		t.Fatalf("columns = %v", fig.Columns)
	}
	if len(fig.Notes) == 0 {
		t.Error("fig4 missing stability note")
	}
}

func TestFig5ShapeAndOrdering(t *testing.T) {
	fig, err := Fig5(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != len(sweepFractions) {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	// The headline claim at 30% malicious (row index 2): L-CoFL's
	// relative error is the smallest of the three models.
	row := fig.Rows[2]
	plain, approxOnly, lcofl := row[1], row[2], row[3]
	if lcofl >= plain || lcofl >= approxOnly {
		t.Errorf("at 30%% malicious lcofl=%.3f not below plain=%.3f approx=%.3f", lcofl, plain, approxOnly)
	}
}

func TestFig9Shape(t *testing.T) {
	fig, err := Fig9(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 6 { // 0% plus the 5 sweep fractions
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	// Cost grows along both axes.
	for _, row := range fig.Rows {
		for c := 2; c < len(row); c++ {
			if row[c] <= row[c-1] {
				t.Errorf("cost not increasing with degree: %v", row)
			}
		}
	}
	first, last := fig.Rows[0], fig.Rows[len(fig.Rows)-1]
	if last[1] <= first[1] {
		t.Errorf("cost not increasing with malicious rate: %v vs %v", first, last)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("fig1"); err == nil {
		t.Error("fig1 accepted (it is the architecture diagram)")
	}
}

func TestExtChannelShape(t *testing.T) {
	fig, err := ExtChannel(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 4 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	// Flagged count must grow with the corruption probability: channel
	// errors present as erroneous results and are excluded.
	flaggedAtZero := fig.Rows[0][3]
	flaggedAtMax := fig.Rows[len(fig.Rows)-1][3]
	if flaggedAtZero != 0 {
		t.Errorf("flagged %v vehicles on a perfect channel", flaggedAtZero)
	}
	if flaggedAtMax <= flaggedAtZero {
		t.Errorf("flagged count did not grow with corruption: %v -> %v", flaggedAtZero, flaggedAtMax)
	}
}

func TestExtMobilityShape(t *testing.T) {
	fig, err := ExtMobility(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 6 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	if len(fig.Columns) != 4 {
		t.Fatalf("columns = %v", fig.Columns)
	}
}

func TestScenarioMobilityRuns(t *testing.T) {
	sc := Scenario{Vehicles: 30, Rounds: 3, Rows: 900, Seed: 9, Mobility: true}
	out, err := sc.Run(LCoFL)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Acc.Values) != 3 {
		t.Fatalf("trace length %d", len(out.Acc.Values))
	}
}

func TestExtLatencyShape(t *testing.T) {
	fig, err := ExtLatency(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig.Rows {
		lcofl, bft, fedavg, ratio := row[1], row[2], row[3], row[4]
		if bft <= lcofl {
			t.Errorf("V=%v: BFT %g not above L-CoFL %g", row[0], bft, lcofl)
		}
		if lcofl <= 0 || fedavg <= 0 || ratio <= 1 {
			t.Errorf("implausible row %v", row)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	fig, err := Fig2(quick())
	if err != nil {
		t.Fatal(err)
	}
	// quick() uses V=40: only degrees 1 and 2 satisfy eq. 6, so the
	// columns are round + two L-CoFL series + the baseline.
	if len(fig.Rows) != 6 || len(fig.Columns) != 4 {
		t.Fatalf("shape %dx%d (%v)", len(fig.Rows), len(fig.Columns), fig.Columns)
	}
	// Relative errors are bounded: every model converges somewhere near
	// the ideal without malicious vehicles.
	for _, row := range fig.Rows {
		for c := 1; c < len(row); c++ {
			if row[c] < 0 || row[c] > 0.6 {
				t.Errorf("implausible relative error %g in %v", row[c], row)
			}
		}
	}
}

func TestFig3Shape(t *testing.T) {
	fig, err := Fig3(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 2 { // quick mode: V/2 and V
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	// The paper's identity: with no malicious vehicles, L-CoFL and
	// approximation-only coincide exactly.
	for _, row := range fig.Rows {
		if row[2] != row[3] {
			t.Errorf("approx-only %g != lcofl %g at V=%v", row[2], row[3], row[0])
		}
	}
}

func TestFig6Shape(t *testing.T) {
	fig, err := Fig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != len(sweepFractions) {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	for _, row := range fig.Rows {
		for c := 1; c < len(row); c++ {
			if row[c] < 0 || row[c] > 1 {
				t.Errorf("MAE %g outside [0,1] in %v", row[c], row)
			}
		}
	}
}

func TestFig7Shape(t *testing.T) {
	fig, err := Fig7(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 20 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	if len(fig.Notes) != 3 {
		t.Fatalf("notes = %d", len(fig.Notes))
	}
	// Each column is a density integrating to ~1 over [0,1].
	binWidth := 1.0 / 20
	for c := 1; c <= 4; c++ {
		var total float64
		for _, row := range fig.Rows {
			total += row[c] * binWidth
		}
		if total < 0.99 || total > 1.01 {
			t.Errorf("column %d density integral = %g", c, total)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	fig, err := Fig8(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 20 || len(fig.Columns) != 4 {
		t.Fatalf("shape %dx%d", len(fig.Rows), len(fig.Columns))
	}
	if len(fig.Notes) != 3 {
		t.Fatalf("notes = %d", len(fig.Notes))
	}
}

func TestRepeat(t *testing.T) {
	o := quick()
	fig, err := Repeat(Fig9, o, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Fig9: 5 columns → axis + 4·(mean, std) = 9.
	if len(fig.Columns) != 9 {
		t.Fatalf("columns = %v", fig.Columns)
	}
	// Fig9 is deterministic in the seed-independent cost model, so every
	// std must be zero and the means equal the single-seed values.
	single, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	for r := range fig.Rows {
		for c := 1; c+1 < len(fig.Rows[r]); c += 2 {
			if fig.Rows[r][c+1] != 0 {
				t.Errorf("deterministic driver produced std %g", fig.Rows[r][c+1])
			}
			if fig.Rows[r][c] != single.Rows[r][(c+1)/2] {
				t.Errorf("mean %g != single value %g", fig.Rows[r][c], single.Rows[r][(c+1)/2])
			}
		}
	}
	if len(fig.Notes) == 0 {
		t.Error("missing seeds note")
	}
}

func TestRepeatStochasticDriver(t *testing.T) {
	fig, err := Repeat(Fig4, quick(), []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy traces vary across seeds: some std must be positive.
	var anyStd float64
	for _, row := range fig.Rows {
		for c := 2; c < len(row); c += 2 {
			anyStd += row[c]
		}
	}
	if anyStd == 0 {
		t.Error("stochastic driver produced zero variance everywhere")
	}
}

func TestRepeatValidation(t *testing.T) {
	if _, err := Repeat(nil, quick(), []int64{1, 2}); err == nil {
		t.Error("nil driver accepted")
	}
	if _, err := Repeat(Fig9, quick(), []int64{1}); err == nil {
		t.Error("single seed accepted")
	}
}

// TestRunParallelDeterminism is the tentpole acceptance check: a full
// scenario run — training, adversary, channel, L-CoFL encode/decode —
// must be byte-identical at workers 1, 2 and 8.
func TestRunParallelDeterminism(t *testing.T) {
	base := Scenario{Vehicles: 30, Rounds: 3, Rows: 900, Seed: 2, MaliciousFraction: 0.2}

	run := func(workers int) *RunOutput {
		t.Helper()
		sc := base
		sc.Workers = workers
		out, err := sc.Run(LCoFL)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for r := range want.Acc.Values {
			if got.Acc.Values[r] != want.Acc.Values[r] {
				t.Fatalf("workers=%d: accuracy trace differs at round %d: %v vs %v",
					workers, r, got.Acc.Values[r], want.Acc.Values[r])
			}
			if got.MeanEst.Values[r] != want.MeanEst.Values[r] {
				t.Fatalf("workers=%d: mean-estimate trace differs at round %d", workers, r)
			}
		}
		if got.DecodeFailures != want.DecodeFailures || got.SuspectedMalicious != want.SuspectedMalicious {
			t.Fatalf("workers=%d: detection differs: failures %d/%d suspected %d/%d",
				workers, got.DecodeFailures, want.DecodeFailures,
				got.SuspectedMalicious, want.SuspectedMalicious)
		}
		for i := range want.TestEstimates {
			if got.TestEstimates[i] != want.TestEstimates[i] {
				t.Fatalf("workers=%d: test estimate %d differs", workers, i)
			}
		}
	}
}

// TestRepeatParallelDeterminism checks the multi-seed sweep aggregates
// identically whether seeds run sequentially or concurrently.
func TestRepeatParallelDeterminism(t *testing.T) {
	o := Options{Vehicles: 20, Rounds: 2, Rows: 600, Seed: 3}
	seeds := []int64{3, 4, 5}

	run := func(workers int) *Figure {
		t.Helper()
		ro := o
		ro.Workers = workers
		fig, err := Repeat(Fig9, ro, seeds)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return fig
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(got.Rows), len(want.Rows))
		}
		for r := range want.Rows {
			for c := range want.Rows[r] {
				if got.Rows[r][c] != want.Rows[r][c] {
					t.Fatalf("workers=%d: cell (%d,%d) differs: %v vs %v",
						workers, r, c, got.Rows[r][c], want.Rows[r][c])
				}
			}
		}
	}
}
