// Package experiments reproduces every figure of the paper's evaluation
// (§VI, Figs. 2–9). Each figure has a driver returning a Figure table
// whose rows are the series the paper plots; cmd/lcofl renders them as
// TSV. DESIGN.md §4 maps figures to drivers.
//
// A Scenario pins one simulation configuration — dataset, fleet size,
// malicious fraction, activation degree, channel — and Run executes one
// comparison model over it. All models share seeds, data partition and
// hyperparameters, so differences between runs isolate the aggregation
// scheme, exactly as the paper's comparison intends.
package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/approx"
	"repro/internal/channel"
	"repro/internal/codedfl"
	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/iov"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/traffic"
)

// Variant names one comparison model from the paper's evaluation.
type Variant string

// The comparison models of §VI.
const (
	// Accurate is the ideal reference: plain FL without malicious
	// vehicles (the paper's "most ideal model").
	Accurate Variant = "accurate-fl"
	// PlainFL is the unprotected baseline with the exact activation.
	PlainFL Variant = "plain-fl"
	// ApproxOnly approximates the activation but aggregates plainly —
	// no Reed–Solomon protection.
	ApproxOnly Variant = "approx-only-fl"
	// LCoFL is the paper's contribution.
	LCoFL Variant = "l-cofl"
	// CodedFL24 is the Dhakal et al. [32] random-linear baseline with its
	// fixed 24-vehicle fleet (Fig. 2).
	CodedFL24 Variant = "coded-fl-24"
)

// Scenario pins one simulation configuration.
type Scenario struct {
	// Vehicles is V (the paper's default is 100).
	Vehicles int
	// Rounds is the number of global training rounds.
	Rounds int
	// Rows sizes the synthetic dataset.
	Rows int
	// RefRows sizes the fusion centre's reference set (must be a
	// multiple of Batches).
	RefRows int
	// Batches is M (paper: 16).
	Batches int
	// Degree is the activation-approximation degree d.
	Degree int
	// MaliciousFraction of the fleet lies (0 disables the adversary).
	MaliciousFraction float64
	// Behavior is the malicious behaviour (default ConstantLie 5).
	Behavior adversary.Behavior
	// Channel models the uplink (nil = perfect).
	Channel channel.Model
	// PlainInputNoise adds feature noise to the PlainFL variant's local
	// data — the paper's Fig. 3 note ("we add a random value to input
	// data of plain FL model") so the ideal model's error stays visible.
	PlainInputNoise float64
	// Mobility drives the IoV mobility simulation (package iov): vehicles
	// move every round and out-of-coverage vehicles become stragglers
	// whose uploads never arrive.
	Mobility bool
	// NonIIDSkew > 0 partitions local data by time-of-day instead of IID
	// (traffic.PartitionNonIID); 1 = fully time-sorted windows.
	NonIIDSkew float64
	// Seed drives every random choice.
	Seed int64
	// Workers bounds the worker-pool goroutines for the run's hot paths
	// (per-vehicle training, L-CoFL slot encode/decode). 0 selects
	// GOMAXPROCS, 1 runs sequentially; the trained models, traces and
	// malicious-detection results are bit-identical at any value.
	Workers int

	// LocalEpochs, LocalRate, DistillEpochs, DistillRate, ServerStep
	// override the learning hyperparameters when non-zero.
	LocalEpochs   int
	LocalRate     float64
	DistillEpochs int
	DistillRate   float64
	ServerStep    float64

	// Obs attaches the observability layer to the run's FL system and
	// (for L-CoFL) coding scheme. Nil disables instrumentation.
	Obs *obs.Obs
}

// withDefaults fills unset fields.
func (s Scenario) withDefaults() Scenario {
	if s.Vehicles == 0 {
		s.Vehicles = 100
	}
	if s.Rounds == 0 {
		s.Rounds = 15
	}
	if s.Rows == 0 {
		s.Rows = 2500
	}
	if s.Batches == 0 {
		s.Batches = traffic.NumFeatures
	}
	if s.RefRows == 0 {
		s.RefRows = s.Batches * 8
	}
	if s.Degree == 0 {
		s.Degree = 1
	}
	if s.Behavior == nil {
		s.Behavior = adversary.ConstantLie{Value: 5}
	}
	if s.LocalEpochs == 0 {
		s.LocalEpochs = 5
	}
	if s.LocalRate == 0 {
		s.LocalRate = 0.2
	}
	if s.DistillEpochs == 0 {
		s.DistillEpochs = 30
	}
	if s.DistillRate == 0 {
		s.DistillRate = 0.2
	}
	if s.ServerStep == 0 {
		s.ServerStep = 0.5
	}
	return s
}

// RunOutput collects one model run's observables.
type RunOutput struct {
	// Variant names the model.
	Variant Variant
	// Acc is the per-round test accuracy trace.
	Acc metrics.Trace
	// MeanEst is the per-round mean estimation over the test set (Fig. 4).
	MeanEst metrics.Trace
	// TestEstimates holds the final model's estimation per test sample.
	TestEstimates []float64
	// TestLabels holds the matching ground-truth labels.
	TestLabels []float64
	// DecodeFailures totals verification-slot failures (L-CoFL only).
	DecodeFailures int
	// SuspectedMalicious is the last round's flagged-vehicle count
	// (L-CoFL only).
	SuspectedMalicious int
}

// Run executes one comparison model over the scenario.
func (s Scenario) Run(v Variant) (*RunOutput, error) {
	sc := s.withDefaults()
	sc.Obs.Emit("experiments.run_start",
		obs.F("variant", string(v)),
		obs.F("seed", sc.Seed),
		obs.F("vehicles", sc.Vehicles),
		obs.F("rounds", sc.Rounds))
	runSpan := sc.Obs.Start("experiments.run", obs.F("variant", string(v)), obs.F("seed", sc.Seed))
	ds, err := traffic.Generate(traffic.GenConfig{Rows: sc.Rows, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	train, test, err := ds.Split(0.8, sc.Seed+1)
	if err != nil {
		return nil, err
	}
	refDS, err := traffic.Generate(traffic.GenConfig{Rows: sc.RefRows, Seed: sc.Seed + 2})
	if err != nil {
		return nil, err
	}
	refX := refDS.Features()

	vehicles := sc.Vehicles
	if v == CodedFL24 {
		vehicles = codedfl.DefaultVehicles
	}
	var parts [][]nn.Sample
	if sc.NonIIDSkew > 0 {
		parts, err = train.PartitionNonIID(vehicles, sc.NonIIDSkew, sc.Seed+3)
	} else {
		parts, err = train.PartitionIID(vehicles, sc.Seed+3)
	}
	if err != nil {
		return nil, err
	}
	if v == PlainFL && sc.PlainInputNoise > 0 {
		for i := range parts {
			parts[i] = traffic.CorruptLowQuality(parts[i], sc.PlainInputNoise, 0, sc.Seed+4+int64(i))
		}
	}

	// Activation: exact for the uncoded/unapproximated models, the
	// least-squares polynomial (paper §VI: 21 points on [-2, 2]) for the
	// approximated ones.
	exact := approx.SymmetricSigmoid()
	var act approx.Activation
	switch v {
	case Accurate, PlainFL, CodedFL24:
		act = exact
	case ApproxOnly, LCoFL:
		p, err := approx.LeastSquares{SamplePoints: 21}.Fit(exact.F, -2, 2, sc.Degree)
		if err != nil {
			return nil, err
		}
		act = approx.FromPolynomial(fmt.Sprintf("ls-%d", sc.Degree), p)
	default:
		return nil, fmt.Errorf("experiments: unknown variant %q", v)
	}

	cfg := fl.Config{
		InputSize:     traffic.NumFeatures,
		LocalEpochs:   sc.LocalEpochs,
		LocalRate:     sc.LocalRate,
		DistillEpochs: sc.DistillEpochs,
		DistillRate:   sc.DistillRate,
		ServerStep:    sc.ServerStep,
		Seed:          sc.Seed + 5,
		Workers:       sc.Workers,
		Obs:           sc.Obs,
	}
	if act.Poly != nil && sc.Degree > 1 {
		// Higher-degree polynomial activations have fast-growing
		// derivatives, so per-sample SGD needs smaller steps to stay in
		// the stable region (at the default rate the weights diverge
		// within a few epochs). Scaling by 1/d² keeps training stable
		// through degree 4 without touching the degree-1 dynamics.
		cfg.LocalRate = sc.LocalRate / float64(sc.Degree*sc.Degree)
	}
	sys, err := fl.NewSystem(cfg, parts, refX, act)
	if err != nil {
		return nil, err
	}

	var scheme fl.Scheme
	var coded *core.Scheme
	switch v {
	case Accurate, PlainFL, ApproxOnly:
		scheme, err = fl.NewPlainScheme(refX)
	case LCoFL:
		coded, err = core.NewScheme(refX, core.SchemeConfig{
			NumVehicles: vehicles,
			NumBatches:  sc.Batches,
			Degree:      sc.Degree,
			Seed:        sc.Seed + 6,
			Workers:     sc.Workers,
			Obs:         sc.Obs,
		})
		scheme = coded
	case CodedFL24:
		scheme, err = codedfl.NewScheme(refX, codedfl.Config{
			NumVehicles: vehicles,
			Seed:        sc.Seed + 6,
		})
	}
	if err != nil {
		return nil, err
	}

	var plan *adversary.Plan
	if sc.MaliciousFraction > 0 && v != Accurate && v != CodedFL24 {
		plan, err = adversary.NewPlan(vehicles, sc.MaliciousFraction, sc.Behavior, sc.Seed+7)
		if err != nil {
			return nil, err
		}
	}

	ch := sc.Channel
	if sc.Mobility {
		mobCfg := iov.DefaultConfig(sc.Seed + 8)
		mobCfg.NumVehicles = vehicles
		mob, err := iov.NewScenario(mobCfg)
		if err != nil {
			return nil, err
		}
		cover, err := iov.NewCoverageChannel(mob, sc.Channel)
		if err != nil {
			return nil, err
		}
		ch = cover
	}

	out := &RunOutput{Variant: v, Acc: metrics.Trace{Name: string(v)}, MeanEst: metrics.Trace{Name: string(v)}}
	testX := test.Features()
	for r := 0; r < sc.Rounds; r++ {
		if _, err := sys.RunRound(scheme, plan, ch); err != nil {
			return nil, fmt.Errorf("experiments: %s round %d: %w", v, r, err)
		}
		acc, err := sys.Accuracy(test.Samples)
		if err != nil {
			return nil, err
		}
		out.Acc.Append(acc)
		me, err := sys.MeanEstimate(testX)
		if err != nil {
			return nil, err
		}
		out.MeanEst.Append(me)
		if coded != nil {
			out.DecodeFailures += coded.DecodeFailures
			out.SuspectedMalicious = len(coded.SuspectedMalicious())
		}
	}
	out.TestLabels = test.Labels()
	out.TestEstimates = make([]float64, test.Len())
	for i, x := range testX {
		pi, err := sys.Shared().EstimateClamped(x)
		if err != nil {
			return nil, err
		}
		out.TestEstimates[i] = pi
	}
	runSpan.End(
		obs.F("decode_failures", out.DecodeFailures),
		obs.F("suspected_malicious", out.SuspectedMalicious))
	return out, nil
}

// estimateSample is a convenience for building nn samples in tests.
var _ = nn.Sample{}
