package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Figure is one reproduced table of series: Columns names the fields,
// Rows holds the numbers the paper plots.
type Figure struct {
	// Name identifies the figure ("fig2", …).
	Name string
	// Title is a one-line description.
	Title string
	// Columns names the row fields.
	Columns []string
	// Rows holds the data, one slice per row, len == len(Columns).
	Rows [][]float64
	// Notes carries free-form observations recorded while running.
	Notes []string
}

// AddRow appends a row, validating its width.
func (f *Figure) AddRow(vals ...float64) error {
	if len(vals) != len(f.Columns) {
		return fmt.Errorf("experiments: %s row has %d values, want %d", f.Name, len(vals), len(f.Columns))
	}
	f.Rows = append(f.Rows, vals)
	return nil
}

// AddNote records an observation emitted with the figure.
func (f *Figure) AddNote(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// WriteTSV renders the figure as a tab-separated table with a header
// comment — the format EXPERIMENTS.md quotes.
func (f *Figure) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", f.Name, f.Title); err != nil {
		return err
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "# note: %s\n", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(f.Columns, "\t")); err != nil {
		return err
	}
	for _, row := range f.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = strconv.FormatFloat(v, 'g', 6, 64)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, "\t")); err != nil {
			return err
		}
	}
	return nil
}
