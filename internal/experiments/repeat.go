package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// Repeat runs a figure driver across several seeds and aggregates the
// cells: the returned figure carries, for every data column of the
// underlying figure, a mean column and a sample-std column. Single-seed
// figures answer "what happened"; repeated figures answer "is the shape
// stable" — EXPERIMENTS.md quotes the repeated form where round-level
// noise matters.
//
// The first column of the underlying figure is treated as the axis and
// must be identical across seeds (drivers derive it from the
// configuration, not the data).
func Repeat(driver func(Options) (*Figure, error), o Options, seeds []int64) (*Figure, error) {
	if driver == nil {
		return nil, fmt.Errorf("experiments: driver required")
	}
	if len(seeds) < 2 {
		return nil, fmt.Errorf("experiments: need at least two seeds, got %d", len(seeds))
	}
	var figs []*Figure
	for _, seed := range seeds {
		run := o
		run.Seed = seed
		seedSpan := o.Obs.Start("experiments.seed", obs.F("seed", seed))
		fig, err := driver(run)
		seedSpan.End()
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		figs = append(figs, fig)
	}
	base := figs[0]
	for i, f := range figs[1:] {
		if len(f.Rows) != len(base.Rows) || len(f.Columns) != len(base.Columns) {
			return nil, fmt.Errorf("experiments: seed %d produced shape %dx%d, want %dx%d",
				seeds[i+1], len(f.Rows), len(f.Columns), len(base.Rows), len(base.Columns))
		}
		for r := range f.Rows {
			if f.Rows[r][0] != base.Rows[r][0] {
				return nil, fmt.Errorf("experiments: seed %d axis mismatch at row %d", seeds[i+1], r)
			}
		}
	}

	out := &Figure{
		Name:    base.Name + "-repeated",
		Title:   fmt.Sprintf("%s (mean ± std over %d seeds)", base.Title, len(seeds)),
		Columns: []string{base.Columns[0]},
	}
	for _, c := range base.Columns[1:] {
		out.Columns = append(out.Columns, c+"_mean", c+"_std")
	}
	for r := range base.Rows {
		row := []float64{base.Rows[r][0]}
		for c := 1; c < len(base.Columns); c++ {
			vals := make([]float64, 0, len(figs))
			for _, f := range figs {
				vals = append(vals, f.Rows[r][c])
			}
			s := metrics.Summarize(vals)
			row = append(row, s.Mean, s.Std)
		}
		if err := out.AddRow(row...); err != nil {
			return nil, err
		}
	}
	out.AddNote("seeds: %v", seeds)
	return out, nil
}
