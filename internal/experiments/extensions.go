package experiments

import (
	"repro/internal/channel"
	"repro/internal/latency"
	"repro/internal/metrics"
	"repro/internal/traffic"
)

// The paper's threat model lists three system-noise sources: malicious
// vehicles (Figs. 4–8), low-quality data (Fig. 3's injected noise), and
// wireless channel errors plus mobility-induced straggling (discussed in
// §I/§III but not separately evaluated). The two extension experiments
// below close that gap; they are additional to the paper's figures and
// recorded as such in EXPERIMENTS.md.

// ExtChannel sweeps the wireless burst-corruption probability: each
// uploaded scalar is independently replaced by garbage with probability
// p. L-CoFL's verification channel detects a corrupted vehicle-round and
// excludes it (a channel error is indistinguishable from a lie — exactly
// the paper's point); plain FL averages the garbage into its model.
func ExtChannel(o Options) (*Figure, error) {
	fig := &Figure{
		Name:    "ext-channel",
		Title:   "relative error vs wireless burst-corruption probability (no malicious vehicles)",
		Columns: []string{"burst_prob", "plain_fl", "lcofl", "lcofl_flagged_per_round"},
	}
	for _, p := range []float64{0, 0.001, 0.005, 0.02} {
		sc := o.scenario()
		mkChannel := func(seed int64) (channel.Model, error) {
			if p == 0 {
				return channel.Perfect{}, nil
			}
			return channel.NewBurst(p, 10, seed)
		}
		idealSc := sc // perfect channel, plain scheme
		ideal, err := idealSc.Run(Accurate)
		if err != nil {
			return nil, err
		}
		chPlain, err := mkChannel(sc.Seed + 40)
		if err != nil {
			return nil, err
		}
		scPlain := sc
		scPlain.Channel = chPlain
		plain, err := scPlain.Run(PlainFL)
		if err != nil {
			return nil, err
		}
		chCoded, err := mkChannel(sc.Seed + 41)
		if err != nil {
			return nil, err
		}
		scCoded := sc
		scCoded.Channel = chCoded
		coded, err := scCoded.Run(LCoFL)
		if err != nil {
			return nil, err
		}
		idealAcc := ideal.Acc.TailMean(5)
		if err := fig.AddRow(p,
			metrics.RelativeError(plain.Acc.TailMean(5), idealAcc),
			metrics.RelativeError(coded.Acc.TailMean(5), idealAcc),
			float64(coded.SuspectedMalicious),
		); err != nil {
			return nil, err
		}
	}
	return fig, nil
}

// ExtMobility runs the full IoV mobility simulation: vehicles start
// inside the fusion centre's coverage and drift; out-of-coverage vehicles
// become stragglers. The coded aggregation decodes from the reachable
// subset as long as it stays above the recover threshold, so accuracy
// holds while the reachable count shrinks.
func ExtMobility(o Options) (*Figure, error) {
	sc := o.scenario()
	sc.Mobility = true
	idealSc := o.scenario() // static fleet
	ideal, err := idealSc.Run(Accurate)
	if err != nil {
		return nil, err
	}
	coded, err := sc.Run(LCoFL)
	if err != nil {
		return nil, err
	}
	scM := sc
	scM.MaliciousFraction = 0.2
	codedAttacked, err := scM.Run(LCoFL)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		Name:    "ext-mobility",
		Title:   "accuracy vs round under random-waypoint mobility (stragglers from coverage gaps)",
		Columns: []string{"round", "static_accurate", "lcofl_mobile", "lcofl_mobile_20pct_malicious"},
	}
	for r := 0; r < len(ideal.Acc.Values); r++ {
		if err := fig.AddRow(float64(r+1), ideal.Acc.Values[r], coded.Acc.Values[r], codedAttacked.Acc.Values[r]); err != nil {
			return nil, err
		}
	}
	fig.AddNote("mobility drops vehicles out of coverage; the coded aggregation tolerates the missing uploads as stragglers")
	return fig, nil
}

// ExtNonIID sweeps the time-of-day data skew: vehicles observing only
// narrow time windows make local models heterogeneous, the classic FL
// stressor. The verification channel is unaffected (it evaluates the
// common broadcast model), so L-CoFL under 20 % malicious is compared
// against the unattacked ideal at each skew level.
func ExtNonIID(o Options) (*Figure, error) {
	fig := &Figure{
		Name:    "ext-noniid",
		Title:   "accuracy vs time-of-day data skew (IID=0 .. fully sorted=1)",
		Columns: []string{"skew", "accurate", "lcofl_20pct_malicious"},
	}
	for _, skew := range []float64{0, 0.5, 0.9, 1} {
		sc := o.scenario()
		sc.NonIIDSkew = skew
		ideal, err := sc.Run(Accurate)
		if err != nil {
			return nil, err
		}
		scM := sc
		scM.MaliciousFraction = 0.2
		coded, err := scM.Run(LCoFL)
		if err != nil {
			return nil, err
		}
		if err := fig.AddRow(skew, ideal.Acc.TailMean(5), coded.Acc.TailMean(5)); err != nil {
			return nil, err
		}
	}
	return fig, nil
}

// ExtLatency quantifies the paper's §II lightweightness argument: the
// analytic per-round latency (package latency) of L-CoFL's coded
// verification versus the BFT-consensus alternative and plain parameter
// FedAvg, swept over the fleet size.
func ExtLatency(o Options) (*Figure, error) {
	fig := &Figure{
		Name:    "ext-latency",
		Title:   "modelled per-round latency (s) vs fleet size: L-CoFL vs BFT verification vs FedAvg",
		Columns: []string{"vehicles", "lcofl_s", "bft_s", "fedavg_s", "bft_over_lcofl"},
	}
	counts := []int{20, 40, 60, 80, 100, 150, 200}
	if o.Vehicles != 0 {
		counts = []int{o.Vehicles / 2, o.Vehicles}
	}
	for _, v := range counts {
		sc := latency.Scenario{
			Vehicles:      v,
			Batches:       16,
			Degree:        1,
			UploadScalars: 2*8 + 128, // the core.Scheme upload at RefRows=128
			Errors:        v / 10,
		}
		coded, err := latency.LCoFL(sc, latency.Params{})
		if err != nil {
			return nil, err
		}
		bft, err := latency.BFT(sc, latency.Params{})
		if err != nil {
			return nil, err
		}
		fedavg, err := latency.ParameterFL(sc, latency.Params{}, traffic.NumFeatures+1)
		if err != nil {
			return nil, err
		}
		if err := fig.AddRow(float64(v), coded.Total, bft.Total, fedavg.Total, bft.Total/coded.Total); err != nil {
			return nil, err
		}
	}
	fig.AddNote("analytic model: 1 MB/s uplink, 20 ms per message, embedded vehicle compute; see internal/latency")
	return fig, nil
}
