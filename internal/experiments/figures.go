package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Options scales the harness: Full reproduces the paper's configuration;
// Quick shrinks rounds and fleet for smoke tests and benchmarks.
type Options struct {
	// Vehicles is the fleet size V (0 → 100).
	Vehicles int
	// Rounds per run (0 → 15).
	Rounds int
	// Rows sizes the dataset (0 → 2500).
	Rows int
	// Seed shifts every run's randomness.
	Seed int64
	// Workers bounds the goroutines each run fans out across its hot
	// paths (per-vehicle training, per-slot encode/decode, multi-seed
	// sweeps). 0 selects GOMAXPROCS, 1 runs sequentially; results are
	// bit-identical at every setting.
	Workers int
	// Obs attaches the observability layer to every run launched through
	// these options. Nil disables instrumentation.
	Obs *obs.Obs
}

func (o Options) scenario() Scenario {
	return Scenario{
		Vehicles: o.Vehicles,
		Rounds:   o.Rounds,
		Rows:     o.Rows,
		Seed:     o.Seed,
		Workers:  o.Workers,
		Obs:      o.Obs,
	}
}

// relErrTrace turns accuracy traces into the paper's per-round relative
// error against the ideal run.
func relErrTrace(model, ideal metrics.Trace) []float64 {
	n := len(model.Values)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = metrics.RelativeError(model.Values[i], ideal.Values[i])
	}
	return out
}

// Fig2 reproduces "Convergence of relative error of L-CoFL with different
// degrees of the approximation functions and the related work in [32]":
// per-round relative error for L-CoFL at degrees 1–3 plus the
// random-linear baseline, all without malicious vehicles.
func Fig2(o Options) (*Figure, error) {
	sc := o.scenario()
	ideal, err := sc.Run(Accurate)
	if err != nil {
		return nil, err
	}
	// Degrees requiring K = d·(M−1)+1 beyond the fleet are infeasible by
	// eq. 6 and skipped (affects shrunken benchmark fleets only).
	v := sc.withDefaults().Vehicles
	m := sc.withDefaults().Batches
	var degrees []int
	for _, d := range []int{1, 2, 3} {
		if d*(m-1)+1 <= v {
			degrees = append(degrees, d)
		}
	}
	cols := []string{"round"}
	for _, d := range degrees {
		cols = append(cols, fmt.Sprintf("lcofl_deg%d", d))
	}
	cols = append(cols, "codedfl24")
	fig := &Figure{
		Name:    "fig2",
		Title:   "relative error vs round: L-CoFL degrees 1-3 and the [32] baseline (no malicious)",
		Columns: cols,
	}
	var series [][]float64
	for _, d := range degrees {
		s := sc
		s.Degree = d
		out, err := s.Run(LCoFL)
		if err != nil {
			return nil, err
		}
		series = append(series, relErrTrace(out.Acc, ideal.Acc))
	}
	baseline, err := sc.Run(CodedFL24)
	if err != nil {
		return nil, err
	}
	series = append(series, relErrTrace(baseline.Acc, ideal.Acc))
	for r := 0; r < len(ideal.Acc.Values); r++ {
		row := []float64{float64(r + 1)}
		for _, s := range series {
			row = append(row, s[r])
		}
		if err := fig.AddRow(row...); err != nil {
			return nil, err
		}
	}
	return fig, nil
}

// Fig3 reproduces "Relative error of the comparison models without
// malicious vehicles in the system having different numbers of vehicles".
// Plain FL carries the paper's injected input noise so its error floor is
// visible; L-CoFL and approximation-only coincide because nothing needs
// correcting.
func Fig3(o Options) (*Figure, error) {
	fig := &Figure{
		Name:    "fig3",
		Title:   "relative error vs fleet size (no malicious)",
		Columns: []string{"vehicles", "plain_fl", "approx_only", "lcofl"},
	}
	counts := []int{20, 40, 60, 80, 100}
	if o.Vehicles != 0 {
		counts = []int{o.Vehicles / 2, o.Vehicles}
	}
	for _, v := range counts {
		sc := o.scenario()
		sc.Vehicles = v
		sc.PlainInputNoise = 0.2
		ideal, err := sc.Run(Accurate)
		if err != nil {
			return nil, err
		}
		row := []float64{float64(v)}
		for _, variant := range []Variant{PlainFL, ApproxOnly, LCoFL} {
			out, err := sc.Run(variant)
			if err != nil {
				return nil, err
			}
			row = append(row, metrics.RelativeError(out.Acc.TailMean(5), ideal.Acc.TailMean(5)))
		}
		if err := fig.AddRow(row...); err != nil {
			return nil, err
		}
	}
	return fig, nil
}

// Fig4 reproduces "Convergence of estimation results of the shared NN
// model during the training process, with 30% of malicious vehicles":
// the per-round mean estimation over the test set for plain FL (which
// fluctuates under poisoning) and L-CoFL (which stays near the accurate
// trace).
func Fig4(o Options) (*Figure, error) {
	sc := o.scenario()
	sc.MaliciousFraction = 0.3
	ideal := sc
	ideal.MaliciousFraction = 0
	accRun, err := ideal.Run(Accurate)
	if err != nil {
		return nil, err
	}
	plainRun, err := sc.Run(PlainFL)
	if err != nil {
		return nil, err
	}
	lcoflRun, err := sc.Run(LCoFL)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		Name:    "fig4",
		Title:   "mean estimation result vs round with 30% malicious vehicles",
		Columns: []string{"round", "accurate", "plain_fl", "lcofl"},
	}
	for r := 0; r < len(accRun.MeanEst.Values); r++ {
		if err := fig.AddRow(float64(r+1), accRun.MeanEst.Values[r], plainRun.MeanEst.Values[r], lcoflRun.MeanEst.Values[r]); err != nil {
			return nil, err
		}
	}
	// Stability note: the paper's claim is that L-CoFL's trace is the
	// steadier one.
	fig.AddNote("std(plain)=%.4f std(lcofl)=%.4f", metrics.Summarize(plainRun.MeanEst.Values).Std, metrics.Summarize(lcoflRun.MeanEst.Values).Std)
	return fig, nil
}

// maliciousSweep runs the three comparison models across malicious
// fractions and hands each run to collect. degree 0 keeps the scenario
// default.
func maliciousSweep(o Options, degree int, fractions []float64, collect func(frac float64, ideal *RunOutput, runs map[Variant]*RunOutput) error) error {
	for _, frac := range fractions {
		sc := o.scenario()
		sc.Degree = degree
		sc.MaliciousFraction = frac
		idealSc := sc
		idealSc.MaliciousFraction = 0
		ideal, err := idealSc.Run(Accurate)
		if err != nil {
			return err
		}
		runs := map[Variant]*RunOutput{}
		for _, v := range []Variant{PlainFL, ApproxOnly, LCoFL} {
			out, err := sc.Run(v)
			if err != nil {
				return err
			}
			runs[v] = out
		}
		if err := collect(frac, ideal, runs); err != nil {
			return err
		}
	}
	return nil
}

// sweepFractions is the paper's malicious-rate axis (Figs. 5, 6, 9).
var sweepFractions = []float64{0.1, 0.2, 0.3, 0.4, 0.5}

// Fig5 reproduces "Relative error of the comparison schemes with
// different percentages of malicious vehicles" (10–50%).
func Fig5(o Options) (*Figure, error) {
	fig := &Figure{
		Name:    "fig5",
		Title:   "relative error vs malicious fraction",
		Columns: []string{"malicious_frac", "plain_fl", "approx_only", "lcofl"},
	}
	err := maliciousSweep(o, 0, sweepFractions, func(frac float64, ideal *RunOutput, runs map[Variant]*RunOutput) error {
		idealAcc := ideal.Acc.TailMean(5)
		return fig.AddRow(frac,
			metrics.RelativeError(runs[PlainFL].Acc.TailMean(5), idealAcc),
			metrics.RelativeError(runs[ApproxOnly].Acc.TailMean(5), idealAcc),
			metrics.RelativeError(runs[LCoFL].Acc.TailMean(5), idealAcc),
		)
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig6 reproduces "Average absolute error of the comparison models with
// different percentages of malicious vehicles": mean |π̂ − y| over the
// test set.
func Fig6(o Options) (*Figure, error) {
	fig := &Figure{
		Name:    "fig6",
		Title:   "average absolute estimation error vs malicious fraction",
		Columns: []string{"malicious_frac", "plain_fl", "approx_only", "lcofl", "accurate"},
	}
	// Degree 3, matching the paper's Fig. 6 claim that L-CoFL is secure
	// against up to 30% malicious vehicles (E = 27 of V = 100 at K = 46).
	// Shrunken fleets (quick/benchmark runs) cannot satisfy K = 46 ≤ V and
	// fall back to degree 1.
	degree := 3
	if o.Vehicles != 0 && o.Vehicles < 3*15+1 {
		degree = 1
	}
	err := maliciousSweep(o, degree, sweepFractions, func(frac float64, ideal *RunOutput, runs map[Variant]*RunOutput) error {
		mae := func(out *RunOutput) float64 {
			return metrics.MeanAbsoluteError(out.TestEstimates, out.TestLabels)
		}
		return fig.AddRow(frac, mae(runs[PlainFL]), mae(runs[ApproxOnly]), mae(runs[LCoFL]), mae(ideal))
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig7 reproduces "Comparison of estimation result distribution among the
// comparison models": the PDF of final per-sample estimations at 30%
// malicious, for the accurate, plain, approximation-only and L-CoFL
// models, plus each model's overlap with the accurate density.
func Fig7(o Options) (*Figure, error) {
	sc := o.scenario()
	sc.MaliciousFraction = 0.3
	idealSc := sc
	idealSc.MaliciousFraction = 0
	ideal, err := idealSc.Run(Accurate)
	if err != nil {
		return nil, err
	}
	runs := map[Variant]*RunOutput{Accurate: ideal}
	for _, v := range []Variant{PlainFL, ApproxOnly, LCoFL} {
		out, err := sc.Run(v)
		if err != nil {
			return nil, err
		}
		runs[v] = out
	}
	const bins = 20
	hist := func(v Variant) (*metrics.Histogram, error) {
		h, err := metrics.NewHistogram(0, 1, bins)
		if err != nil {
			return nil, err
		}
		h.AddAll(runs[v].TestEstimates)
		return h, nil
	}
	order := []Variant{Accurate, PlainFL, ApproxOnly, LCoFL}
	hists := map[Variant]*metrics.Histogram{}
	for _, v := range order {
		h, err := hist(v)
		if err != nil {
			return nil, err
		}
		hists[v] = h
	}
	fig := &Figure{
		Name:    "fig7",
		Title:   "PDF of estimation results with 30% malicious vehicles",
		Columns: []string{"estimate_bin", "accurate", "plain_fl", "approx_only", "lcofl"},
	}
	centers := hists[Accurate].BinCenters()
	dens := map[Variant][]float64{}
	for _, v := range order {
		dens[v] = hists[v].Density()
	}
	for b := 0; b < bins; b++ {
		if err := fig.AddRow(centers[b], dens[Accurate][b], dens[PlainFL][b], dens[ApproxOnly][b], dens[LCoFL][b]); err != nil {
			return nil, err
		}
	}
	for _, v := range []Variant{PlainFL, ApproxOnly, LCoFL} {
		ov, err := hists[Accurate].Overlap(hists[v])
		if err != nil {
			return nil, err
		}
		fig.AddNote("overlap(%s, accurate) = %.3f", v, ov)
	}
	return fig, nil
}

// Fig8 reproduces "Comparison of relative error distribution among the
// comparison models": the PDF of per-sample |π̂_model − π̂_accurate| at
// 30% malicious.
func Fig8(o Options) (*Figure, error) {
	sc := o.scenario()
	sc.MaliciousFraction = 0.3
	idealSc := sc
	idealSc.MaliciousFraction = 0
	ideal, err := idealSc.Run(Accurate)
	if err != nil {
		return nil, err
	}
	const bins = 20
	fig := &Figure{
		Name:    "fig8",
		Title:   "PDF of per-sample relative error with 30% malicious vehicles",
		Columns: []string{"error_bin", "plain_fl", "approx_only", "lcofl"},
	}
	hists := map[Variant]*metrics.Histogram{}
	for _, v := range []Variant{PlainFL, ApproxOnly, LCoFL} {
		out, err := sc.Run(v)
		if err != nil {
			return nil, err
		}
		h, err := metrics.NewHistogram(0, 0.5, bins)
		if err != nil {
			return nil, err
		}
		for i := range out.TestEstimates {
			h.Add(math.Abs(out.TestEstimates[i] - ideal.TestEstimates[i]))
		}
		hists[v] = h
		fig.AddNote("median |err| %s = %.3f", v, metrics.Summarize(absDiff(out.TestEstimates, ideal.TestEstimates)).Median)
	}
	centers := hists[PlainFL].BinCenters()
	dp, da, dl := hists[PlainFL].Density(), hists[ApproxOnly].Density(), hists[LCoFL].Density()
	for b := 0; b < bins; b++ {
		if err := fig.AddRow(centers[b], dp[b], da[b], dl[b]); err != nil {
			return nil, err
		}
	}
	return fig, nil
}

func absDiff(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = math.Abs(a[i] - b[i])
	}
	return out
}

// Fig9 reproduces "Computing cost/redundancy with different degrees of
// approximation function and different rates of malicious vehicles":
// the Proposition 1 cost model per piece of data, over degrees 1–4 and
// malicious rates 0–50%.
func Fig9(o Options) (*Figure, error) {
	v := o.Vehicles
	if v == 0 {
		v = 100
	}
	fig := &Figure{
		Name:    "fig9",
		Title:   "computing cost per data piece vs approximation degree and malicious rate",
		Columns: []string{"malicious_frac", "deg1", "deg2", "deg3", "deg4"},
	}
	for _, frac := range append([]float64{0}, sweepFractions...) {
		row := []float64{frac}
		for d := 1; d <= 4; d++ {
			c := core.Cost{
				V:            v,
				M:            16,
				Degree:       d,
				ApproxPoints: 21,
				Errors:       int(frac * float64(v)),
			}
			row = append(row, c.PerDataPiece())
		}
		if err := fig.AddRow(row...); err != nil {
			return nil, err
		}
	}
	return fig, nil
}

// All runs every figure driver in order.
func All(o Options) ([]*Figure, error) {
	type driver struct {
		name string
		fn   func(Options) (*Figure, error)
	}
	drivers := []driver{
		{"fig2", Fig2}, {"fig3", Fig3}, {"fig4", Fig4}, {"fig5", Fig5},
		{"fig6", Fig6}, {"fig7", Fig7}, {"fig8", Fig8}, {"fig9", Fig9},
		{"ext-channel", ExtChannel}, {"ext-mobility", ExtMobility}, {"ext-noniid", ExtNonIID}, {"ext-latency", ExtLatency},
	}
	var out []*Figure
	for _, d := range drivers {
		fig, err := d.fn(o)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.name, err)
		}
		out = append(out, fig)
	}
	return out, nil
}

// ByName returns the driver for a figure name ("fig2".."fig9").
func ByName(name string) (func(Options) (*Figure, error), error) {
	switch name {
	case "fig2":
		return Fig2, nil
	case "fig3":
		return Fig3, nil
	case "fig4":
		return Fig4, nil
	case "fig5":
		return Fig5, nil
	case "fig6":
		return Fig6, nil
	case "fig7":
		return Fig7, nil
	case "fig8":
		return Fig8, nil
	case "fig9":
		return Fig9, nil
	case "ext-channel":
		return ExtChannel, nil
	case "ext-mobility":
		return ExtMobility, nil
	case "ext-noniid":
		return ExtNonIID, nil
	case "ext-latency":
		return ExtLatency, nil
	}
	return nil, fmt.Errorf("experiments: unknown figure %q (want fig2..fig9, ext-channel, ext-mobility)", name)
}
