// Package metrics implements the evaluation metrics of the paper's §VI:
// relative error (the accuracy gap between an examined model and the
// ideal plain-FL model trained without malicious vehicles), average
// absolute estimation error, and probability-density estimates of
// estimation results and errors (Figs. 5–8).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// RelativeError is the paper's headline metric: the absolute gap between
// an examined model's accuracy and the ideal (accurate-FL) model's
// accuracy on the same test set.
func RelativeError(examinedAccuracy, idealAccuracy float64) float64 {
	return math.Abs(examinedAccuracy - idealAccuracy)
}

// MeanAbsoluteError returns the average |estimate − truth| over paired
// slices (Fig. 6's metric). It panics on length mismatch: the pairing is a
// programmer invariant.
func MeanAbsoluteError(estimates, truth []float64) float64 {
	if len(estimates) != len(truth) {
		panic(fmt.Sprintf("metrics: length mismatch %d != %d", len(estimates), len(truth)))
	}
	if len(estimates) == 0 {
		return 0
	}
	var sum float64
	for i := range estimates {
		sum += math.Abs(estimates[i] - truth[i])
	}
	return sum / float64(len(estimates))
}

// Histogram is a fixed-bin density estimate over [Lo, Hi].
type Histogram struct {
	// Lo and Hi delimit the estimation range.
	Lo, Hi float64
	// Counts holds per-bin observation counts.
	Counts []int
	// N is the total number of observations, including clamped outliers.
	N int
}

// NewHistogram builds an empty histogram with the given number of bins.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("metrics: bins %d must be >= 1", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("metrics: invalid range [%g, %g]", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation; values outside [Lo, Hi] clamp to the edge
// bins so the density still integrates to one.
func (h *Histogram) Add(v float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (v - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.N++
}

// AddAll records a slice of observations.
func (h *Histogram) AddAll(vs []float64) {
	for _, v := range vs {
		h.Add(v)
	}
}

// Density returns the normalised probability density per bin (integrating
// to 1 over [Lo, Hi]); all zeros when empty.
func (h *Histogram) Density() []float64 {
	out := make([]float64, len(h.Counts))
	if h.N == 0 {
		return out
	}
	binWidth := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		out[i] = float64(c) / (float64(h.N) * binWidth)
	}
	return out
}

// BinCenters returns the midpoint of every bin, for plotting.
func (h *Histogram) BinCenters() []float64 {
	out := make([]float64, len(h.Counts))
	binWidth := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i := range out {
		out[i] = h.Lo + binWidth*(float64(i)+0.5)
	}
	return out
}

// Mode returns the centre of the most populated bin — the paper's
// "estimation result with highest frequency" (Fig. 7).
func (h *Histogram) Mode() float64 {
	best, bestCount := 0, -1
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	return h.BinCenters()[best]
}

// Overlap returns the overlapping area of two densities on the same
// support — the paper's Fig. 7 comparison ("largest overlapping area with
// the accurate FL model"). Both histograms must share range and bins.
func (h *Histogram) Overlap(o *Histogram) (float64, error) {
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Counts) != len(o.Counts) {
		return 0, fmt.Errorf("metrics: histograms have different supports")
	}
	da, db := h.Density(), o.Density()
	binWidth := (h.Hi - h.Lo) / float64(len(h.Counts))
	var area float64
	for i := range da {
		area += math.Min(da[i], db[i]) * binWidth
	}
	return area, nil
}

// Trace is a per-round series (convergence curves of Figs. 2 and 4).
type Trace struct {
	// Name labels the series in figure output.
	Name string
	// Values holds one observation per round.
	Values []float64
}

// Append records the next round's value.
func (t *Trace) Append(v float64) { t.Values = append(t.Values, v) }

// Last returns the most recent value (0 for an empty trace).
func (t *Trace) Last() float64 {
	if len(t.Values) == 0 {
		return 0
	}
	return t.Values[len(t.Values)-1]
}

// TailMean averages the last k values (all values when k exceeds the
// length) — the steady-state summary used in the sweep figures.
func (t *Trace) TailMean(k int) float64 {
	n := len(t.Values)
	if n == 0 {
		return 0
	}
	if k > n {
		k = n
	}
	var sum float64
	for _, v := range t.Values[n-k:] {
		sum += v
	}
	return sum / float64(k)
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                     int
	Mean, Std             float64
	Min, Median, P90, Max float64
}

// Summarize computes descriptive statistics; zero value for empty input.
func Summarize(vs []float64) Summary {
	n := len(vs)
	if n == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, v := range vs {
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      n,
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Min:    sorted[0],
		Median: sorted[n/2],
		P90:    sorted[n*9/10],
		Max:    sorted[n-1],
	}
}
