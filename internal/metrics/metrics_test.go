package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestRelativeError(t *testing.T) {
	if got := RelativeError(0.7, 0.9); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("RelativeError = %g", got)
	}
	if got := RelativeError(0.9, 0.7); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("RelativeError symmetric = %g", got)
	}
}

func TestMeanAbsoluteError(t *testing.T) {
	got := MeanAbsoluteError([]float64{1, 2, 3}, []float64{1, 1, 5})
	if math.Abs(got-1) > 1e-12 { // (0+1+2)/3
		t.Errorf("MAE = %g", got)
	}
	if got := MeanAbsoluteError(nil, nil); got != 0 {
		t.Errorf("empty MAE = %g", got)
	}
}

func TestMeanAbsoluteErrorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MeanAbsoluteError([]float64{1}, []float64{1, 2})
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0.1, 0.1, 0.6, 0.9, -5, 7})
	if h.N != 6 {
		t.Errorf("N = %d", h.N)
	}
	if h.Counts[0] != 3 { // 0.1, 0.1 and clamped -5
		t.Errorf("Counts[0] = %d", h.Counts[0])
	}
	if h.Counts[3] != 2 { // 0.9 and clamped 7
		t.Errorf("Counts[3] = %d", h.Counts[3])
	}
	// Density integrates to 1.
	var total float64
	for _, d := range h.Density() {
		total += d * 0.25
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("density integral = %g", total)
	}
	if got := h.Mode(); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("Mode = %g", got)
	}
	centers := h.BinCenters()
	if math.Abs(centers[1]-0.375) > 1e-12 {
		t.Errorf("BinCenters = %v", centers)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(1, 0, 4); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestHistogramEmptyDensity(t *testing.T) {
	h, _ := NewHistogram(0, 1, 3)
	for _, d := range h.Density() {
		if d != 0 {
			t.Error("empty histogram has nonzero density")
		}
	}
}

func TestOverlap(t *testing.T) {
	a, _ := NewHistogram(0, 1, 10)
	b, _ := NewHistogram(0, 1, 10)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := rng.Float64()
		a.Add(v)
		b.Add(v)
	}
	ov, err := a.Overlap(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ov-1) > 1e-12 {
		t.Errorf("identical overlap = %g, want 1", ov)
	}
	// Disjoint supports.
	c, _ := NewHistogram(0, 1, 10)
	d, _ := NewHistogram(0, 1, 10)
	for i := 0; i < 100; i++ {
		c.Add(0.05)
		d.Add(0.95)
	}
	ov, err = c.Overlap(d)
	if err != nil {
		t.Fatal(err)
	}
	if ov != 0 {
		t.Errorf("disjoint overlap = %g", ov)
	}
	bad, _ := NewHistogram(0, 2, 10)
	if _, err := a.Overlap(bad); err == nil {
		t.Error("mismatched supports accepted")
	}
}

func TestOverlapDiscriminates(t *testing.T) {
	// A shifted distribution must overlap less than a matching one — the
	// Fig. 7 comparison logic.
	rng := rand.New(rand.NewSource(2))
	ref, _ := NewHistogram(0, 1, 20)
	close_, _ := NewHistogram(0, 1, 20)
	far, _ := NewHistogram(0, 1, 20)
	for i := 0; i < 3000; i++ {
		ref.Add(0.4 + 0.1*rng.NormFloat64())
		close_.Add(0.42 + 0.1*rng.NormFloat64())
		far.Add(0.8 + 0.1*rng.NormFloat64())
	}
	ovClose, _ := ref.Overlap(close_)
	ovFar, _ := ref.Overlap(far)
	if ovClose <= ovFar {
		t.Errorf("overlap ordering wrong: close %g <= far %g", ovClose, ovFar)
	}
}

func TestTrace(t *testing.T) {
	tr := &Trace{Name: "acc"}
	if tr.Last() != 0 || tr.TailMean(3) != 0 {
		t.Error("empty trace accessors nonzero")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		tr.Append(v)
	}
	if tr.Last() != 4 {
		t.Errorf("Last = %g", tr.Last())
	}
	if got := tr.TailMean(2); got != 3.5 {
		t.Errorf("TailMean(2) = %g", got)
	}
	if got := tr.TailMean(100); got != 2.5 {
		t.Errorf("TailMean(all) = %g", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Errorf("Summary = %+v", s)
	}
	if s.Median != 3 { // upper median by n/2 index
		t.Errorf("Median = %g", s.Median)
	}
	want := math.Sqrt(1.25)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("Std = %g, want %g", s.Std, want)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}
