package fl

import (
	"fmt"

	"repro/internal/nn"
)

// PlainScheme is the uncoded estimation pipeline of the Plain-FL and
// Approximation-only-FL comparison models (paper §VI): every vehicle
// evaluates its locally-trained model on every raw reference sample and
// the fusion centre averages the received estimates per sample (eq. 2).
// It has no defence: malicious values and channel noise flow straight
// into the average.
type PlainScheme struct {
	refX [][]float64
}

// NewPlainScheme builds the scheme over the fusion centre's reference
// features.
func NewPlainScheme(refX [][]float64) (*PlainScheme, error) {
	if len(refX) == 0 {
		return nil, fmt.Errorf("fl: plain scheme needs reference features")
	}
	return &PlainScheme{refX: cloneRows(refX)}, nil
}

// Name implements Scheme.
func (p *PlainScheme) Name() string { return "plain" }

// BeginRound implements Scheme; the uncoded pipeline has no verification
// channel and ignores the broadcast model.
func (p *PlainScheme) BeginRound(*nn.Network) error { return nil }

// Upload implements Scheme: the vehicle's estimation π for every
// reference sample. The vehicle ID is irrelevant to the uncoded pipeline.
func (p *PlainScheme) Upload(_ int, model *nn.Network) ([]float64, error) {
	out := make([]float64, len(p.refX))
	for j, x := range p.refX {
		pi, err := model.EstimateClamped(x)
		if err != nil {
			return nil, err
		}
		out[j] = pi
	}
	return out, nil
}

// Aggregate implements Scheme: the per-sample mean of received estimates,
// skipping dropped scalars. A sample with no surviving estimate at all
// aggregates to Dropped.
func (p *PlainScheme) Aggregate(uploads [][]float64) ([]float64, error) {
	n := len(p.refX)
	sums := make([]float64, n)
	counts := make([]int, n)
	for v, up := range uploads {
		if up == nil {
			continue // vehicle entirely absent this round
		}
		if len(up) != n {
			return nil, fmt.Errorf("fl: vehicle %d uploaded %d values, want %d", v, len(up), n)
		}
		for j, val := range up {
			if IsDropped(val) {
				continue
			}
			sums[j] += val
			counts[j]++
		}
	}
	out := make([]float64, n)
	for j := range out {
		if counts[j] == 0 {
			out[j] = Dropped
			continue
		}
		out[j] = sums[j] / float64(counts[j])
	}
	return out, nil
}
