package fl

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/approx"
	"repro/internal/channel"
	"repro/internal/nn"
	"repro/internal/traffic"
)

func testConfig() Config {
	return Config{
		InputSize:     traffic.NumFeatures,
		LocalEpochs:   5,
		LocalRate:     0.2,
		DistillEpochs: 30,
		DistillRate:   0.2,
		ServerStep:    0.5,
		Seed:          1,
	}
}

// buildSystem creates a small deployment over synthetic traffic data. The
// fusion centre's reference features come from a separate unlabeled draw,
// modelling sensing data the infrastructure collects itself.
func buildSystem(t *testing.T, vehicles int, act approx.Activation) (*System, *traffic.Dataset) {
	t.Helper()
	return buildSystemWith(t, vehicles, act, testConfig())
}

// buildSystemWith is buildSystem with an explicit configuration.
func buildSystemWith(t *testing.T, vehicles int, act approx.Activation, cfg Config) (*System, *traffic.Dataset) {
	t.Helper()
	ds, err := traffic.Generate(traffic.GenConfig{Rows: 2000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := ds.Split(0.8, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := traffic.Generate(traffic.GenConfig{Rows: 300, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := train.PartitionIID(vehicles, 4)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(cfg, parts, ref.Features(), act)
	if err != nil {
		t.Fatal(err)
	}
	return sys, test
}

func TestNewSystemValidation(t *testing.T) {
	act := approx.SymmetricSigmoid()
	good := [][]nn.Sample{{{X: make([]float64, 16), Y: 1}}}
	ref := [][]float64{make([]float64, 16)}

	cfg := testConfig()
	cfg.InputSize = 0
	if _, err := NewSystem(cfg, good, ref, act); err == nil {
		t.Error("zero input size accepted")
	}
	cfg = testConfig()
	cfg.LocalEpochs = 0
	if _, err := NewSystem(cfg, good, ref, act); err == nil {
		t.Error("zero local epochs accepted")
	}
	cfg = testConfig()
	cfg.DistillRate = 0
	if _, err := NewSystem(cfg, good, ref, act); err == nil {
		t.Error("zero distill rate accepted")
	}
	cfg = testConfig()
	cfg.ServerStep = 1.5
	if _, err := NewSystem(cfg, good, ref, act); err == nil {
		t.Error("server step > 1 accepted")
	}
	if _, err := NewSystem(testConfig(), nil, ref, act); err == nil {
		t.Error("no vehicles accepted")
	}
	if _, err := NewSystem(testConfig(), good, nil, act); err == nil {
		t.Error("no reference features accepted")
	}
	if _, err := NewSystem(testConfig(), [][]nn.Sample{{}}, ref, act); err == nil {
		t.Error("vehicle with empty data accepted")
	}
	badRef := [][]float64{make([]float64, 3)}
	if _, err := NewSystem(testConfig(), good, badRef, act); err == nil {
		t.Error("wrong reference width accepted")
	}
}

func TestRunRoundPlainHonest(t *testing.T) {
	sys, test := buildSystem(t, 10, approx.SymmetricSigmoid())
	scheme, err := NewPlainScheme(sys.ReferenceFeatures())
	if err != nil {
		t.Fatal(err)
	}
	accBefore, err := sys.Accuracy(test.Samples)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 25
	var stats *RoundStats
	var tail float64
	for r := 0; r < rounds; r++ {
		stats, err = sys.RunRound(scheme, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r >= rounds-5 {
			acc, err := sys.Accuracy(test.Samples)
			if err != nil {
				t.Fatal(err)
			}
			tail += acc / 5
		}
	}
	if stats.Round != rounds || sys.Round() != rounds {
		t.Errorf("round accounting: %d/%d", stats.Round, sys.Round())
	}
	// Per-round SGD noise makes single-round comparisons flaky; judge the
	// mean accuracy of the last five rounds.
	if tail < accBefore {
		t.Errorf("accuracy regressed %g -> %g over honest rounds", accBefore, tail)
	}
	if tail < 0.78 {
		t.Errorf("final accuracy %g too low — distillation is not learning", tail)
	}
	for _, target := range stats.Targets {
		if !IsDropped(target) && (target < 0 || target > 1.5) {
			t.Errorf("implausible estimation target %g", target)
		}
	}
}

func TestRunRoundMaliciousDegradesPlain(t *testing.T) {
	// The paper's central premise: plain averaging is poisoned by
	// malicious uploads. Targets under attack must differ markedly from
	// honest targets.
	sysHonest, _ := buildSystem(t, 10, approx.SymmetricSigmoid())
	sysAttack, _ := buildSystem(t, 10, approx.SymmetricSigmoid())
	scheme, err := NewPlainScheme(sysHonest.ReferenceFeatures())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := adversary.NewPlan(10, 0.3, adversary.ConstantLie{Value: 5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := sysHonest.RunRound(scheme, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := sysAttack.RunRound(scheme, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	var gap float64
	for j := range sh.Targets {
		gap += math.Abs(sh.Targets[j] - sa.Targets[j])
	}
	gap /= float64(len(sh.Targets))
	// 30% of vehicles reporting 5 shifts the mean by ≈ 0.3·(5-π) ≥ 1.
	if gap < 0.5 {
		t.Errorf("malicious uploads shifted targets by only %g", gap)
	}
}

func TestRunRoundChannelDrops(t *testing.T) {
	sys, _ := buildSystem(t, 6, approx.SymmetricSigmoid())
	scheme, err := NewPlainScheme(sys.ReferenceFeatures())
	if err != nil {
		t.Fatal(err)
	}
	er, err := channel.NewErasure(0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sys.RunRound(scheme, nil, er)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DroppedScalars == 0 {
		t.Error("no scalars dropped at p=0.5")
	}
}

func TestRunRoundValidation(t *testing.T) {
	sys, _ := buildSystem(t, 3, approx.SymmetricSigmoid())
	if _, err := sys.RunRound(nil, nil, nil); err == nil {
		t.Error("nil scheme accepted")
	}
}

func TestPlainSchemeAggregate(t *testing.T) {
	ref := [][]float64{{0}, {0}}
	scheme, err := NewPlainScheme(ref)
	if err != nil {
		t.Fatal(err)
	}
	uploads := [][]float64{
		{0.2, Dropped},
		{0.4, Dropped},
		nil, // absent vehicle
	}
	got, err := scheme.Aggregate(uploads)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-0.3) > 1e-12 {
		t.Errorf("mean = %g, want 0.3", got[0])
	}
	if !IsDropped(got[1]) {
		t.Errorf("fully-dropped sample aggregated to %g", got[1])
	}
	if _, err := scheme.Aggregate([][]float64{{1, 2, 3}}); err == nil {
		t.Error("wrong upload width accepted")
	}
	if _, err := NewPlainScheme(nil); err == nil {
		t.Error("empty reference accepted")
	}
}

func TestMeanEstimate(t *testing.T) {
	sys, test := buildSystem(t, 3, approx.SymmetricSigmoid())
	m, err := sys.MeanEstimate(test.Features())
	if err != nil {
		t.Fatal(err)
	}
	if m <= 0 || m >= 1 {
		t.Errorf("mean estimate %g outside (0,1)", m)
	}
	if _, err := sys.MeanEstimate(nil); err == nil {
		t.Error("empty feature set accepted")
	}
}

func TestAccuracyValidation(t *testing.T) {
	sys, _ := buildSystem(t, 3, approx.SymmetricSigmoid())
	if _, err := sys.Accuracy(nil); err == nil {
		t.Error("empty test set accepted")
	}
}

func TestFedAvg(t *testing.T) {
	got, err := FedAvg([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("FedAvg = %v", got)
	}
	if _, err := FedAvg(nil); err == nil {
		t.Error("empty FedAvg accepted")
	}
	if _, err := FedAvg([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged FedAvg accepted")
	}
}

func TestFedAvgIsLinearInParams(t *testing.T) {
	// FedAvg of identical vectors is the identity — eq. 2 sanity.
	p := []float64{0.5, -1, 3}
	got, err := FedAvg([][]float64{p, p, p})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if got[i] != p[i] {
			t.Errorf("FedAvg(identical)[%d] = %g", i, got[i])
		}
	}
}

func TestDeterministicRounds(t *testing.T) {
	a, _ := buildSystem(t, 5, approx.SymmetricSigmoid())
	b, _ := buildSystem(t, 5, approx.SymmetricSigmoid())
	sa, err := NewPlainScheme(a.ReferenceFeatures())
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewPlainScheme(b.ReferenceFeatures())
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.RunRound(sa, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RunRound(sb, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ra.Targets {
		if ra.Targets[j] != rb.Targets[j] {
			t.Fatal("same seeds produced different rounds")
		}
	}
}
