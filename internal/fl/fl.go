// Package fl implements the federated-learning substrate shared by every
// comparison model in the paper's evaluation (paper §III-A and §VI).
//
// A System holds the fusion centre's shared model, the vehicles with
// their local datasets, and the fusion centre's reference feature set.
// One global round (paper §III-A) proceeds as:
//
//  1. the fusion centre broadcasts the shared model parameters;
//  2. every vehicle resets its local model to the broadcast parameters
//     and trains on its local dataset by SGD (eq. 1);
//  3. every vehicle computes an estimation upload from its locally
//     trained model — what exactly it uploads is the pluggable Scheme
//     (plain per-sample estimates, Lagrange-encoded estimates, …);
//     malicious vehicles corrupt their upload (package adversary) and the
//     wireless channel may perturb or drop scalars (package channel);
//  4. the fusion centre aggregates the received uploads into per-
//     reference-sample estimation targets (the Scheme again: plain
//     averaging per eq. 2, or Reed–Solomon decoding for L-CoFL) and
//     updates the shared model by fitting those targets (federated
//     distillation — see DESIGN.md §1(b) for why this is the coherent
//     reading of the paper's "vehicles upload only estimation results").
//
// The package provides the two baseline schemes (plain FL and
// approximation-only FL differ solely in the activation installed into
// the models) and the traditional parameter-upload FedAvg mode
// (RunParamRound); package core provides the paper's contribution on top
// of the same System.
package fl

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/adversary"
	"repro/internal/approx"
	"repro/internal/channel"
	"repro/internal/linalg"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Dropped is the sentinel for a scalar lost on the wireless channel.
// Aggregators must skip NaN values.
var Dropped = math.NaN()

// IsDropped reports whether an uploaded scalar was lost in transit.
func IsDropped(v float64) bool { return math.IsNaN(v) }

// Config parameterises a System.
type Config struct {
	// InputSize is the feature-vector length (the paper's M = 16).
	InputSize int
	// Hidden optionally inserts hidden layers. The coded path requires a
	// single nonlinear layer so that the end-to-end estimation stays a
	// degree-d polynomial of the input (see DESIGN.md §1); baselines may
	// use hidden layers freely.
	Hidden []int
	// LocalEpochs is the per-round local SGD epoch count t.
	LocalEpochs int
	// LocalRate is the local learning rate ρ of eq. 1.
	LocalRate float64
	// DistillEpochs is the fusion centre's update epoch count per round.
	DistillEpochs int
	// DistillRate is the fusion centre's update learning rate.
	DistillRate float64
	// WeightCap, when positive, bounds the L1 norm of every model's
	// parameter vector via projected SGD. Polynomial activations require
	// it: they are non-monotone outside their approximation interval, so
	// pre-activations must stay bounded (|w·x+b| ≤ ‖params‖₁ for inputs
	// in [-1, 1]).
	WeightCap float64
	// ProximalMu adds a FedProx-style proximal term to local training,
	// pulling each vehicle's parameters toward the broadcast model with
	// strength μ. Coded schemes rely on it: the decoder separates honest
	// from malicious uploads by residual, so honest heterogeneity must
	// stay bounded. Zero disables the term (plain FedAvg-style locals).
	ProximalMu float64
	// ServerStep damps the fusion centre's parameter update:
	// new = old + ServerStep·(fit − old). Values in (0, 1]; zero selects
	// the default 0.5. Full steps (1.0) can induce a period-2 oscillation
	// between confident shared models and over-corrected local ensembles;
	// damping is the standard fixed-point remedy.
	ServerStep float64
	// Workers bounds the pool the per-vehicle training/upload loop fans
	// out across each round (package parallel). Zero selects GOMAXPROCS,
	// 1 runs sequentially. Every vehicle owns its RNG stream and model,
	// and the adversary/channel phase stays sequential in vehicle order,
	// so round results are bit-identical at any worker count.
	Workers int
	// Seed makes the whole system deterministic.
	Seed int64
	// Obs attaches the observability layer: per-round spans, per-vehicle
	// training timings and drop counters. Nil (the default) disables all
	// instrumentation at near-zero cost.
	Obs *obs.Obs
}

func (c Config) validate() error {
	if c.InputSize < 1 {
		return fmt.Errorf("fl: input size %d must be >= 1", c.InputSize)
	}
	if c.LocalEpochs < 1 || c.DistillEpochs < 1 {
		return fmt.Errorf("fl: epochs (%d local, %d distill) must be >= 1", c.LocalEpochs, c.DistillEpochs)
	}
	if c.LocalRate <= 0 || c.DistillRate <= 0 {
		return fmt.Errorf("fl: learning rates (%g local, %g distill) must be positive", c.LocalRate, c.DistillRate)
	}
	if c.ServerStep < 0 || c.ServerStep > 1 {
		return fmt.Errorf("fl: server step %g outside (0, 1]", c.ServerStep)
	}
	return nil
}

// serverStep returns the damping factor with its default applied.
func (c Config) serverStep() float64 {
	if c.ServerStep == 0 {
		return 0.5
	}
	return c.ServerStep
}

// Vehicle is one FL participant with its private dataset and local model.
type Vehicle struct {
	// ID indexes the vehicle; it is also its adversary-plan key.
	ID int
	// Data is the private local dataset D_i; never leaves the vehicle.
	Data []nn.Sample
	// Model is the local working copy of the shared model.
	Model *nn.Network

	rng *rand.Rand
}

// System is a running FL deployment.
type System struct {
	cfg      Config
	shared   *nn.Network
	vehicles []*Vehicle
	refX     [][]float64
	rng      *rand.Rand
	round    int

	// Observability handles, resolved once in NewSystem so the per-round
	// and per-vehicle paths never touch the registry. trace is the
	// session trace ID (obs.TraceIDFromSeed(cfg.Seed)); zero with
	// tracing off.
	obs      *obs.Obs
	cRounds  *obs.Counter
	cDropped *obs.Counter
	hTrainNs *obs.Histogram
	trace    uint64
}

// NewSystem builds the deployment: one vehicle per local dataset, a shared
// model with the given activation, and the fusion centre's reference
// features used for estimation aggregation and distillation.
func NewSystem(cfg Config, localData [][]nn.Sample, refX [][]float64, act approx.Activation) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(localData) == 0 {
		return nil, fmt.Errorf("fl: need at least one vehicle dataset")
	}
	if len(refX) == 0 {
		return nil, fmt.Errorf("fl: need a non-empty reference feature set")
	}
	for i, x := range refX {
		if len(x) != cfg.InputSize {
			return nil, fmt.Errorf("fl: reference sample %d has %d features, want %d", i, len(x), cfg.InputSize)
		}
	}
	sizes := append([]int{cfg.InputSize}, cfg.Hidden...)
	sizes = append(sizes, 1)
	shared, err := nn.New(nn.Config{LayerSizes: sizes, Activation: act, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("fl: shared model: %w", err)
	}
	if err := shared.SetWeightCap(cfg.WeightCap); err != nil {
		return nil, fmt.Errorf("fl: %w", err)
	}
	s := &System{
		cfg:    cfg,
		shared: shared,
		refX:   cloneRows(refX),
		rng:    rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	if cfg.Obs.Enabled() {
		s.obs = cfg.Obs
		s.cRounds = cfg.Obs.Counter("fl.rounds")
		s.cDropped = cfg.Obs.Counter("fl.dropped_scalars")
		s.hTrainNs = cfg.Obs.Histogram("fl.train_ns", obs.LatencyBuckets())
		if cfg.Obs.TraceEnabled() {
			s.trace = obs.TraceIDFromSeed(cfg.Seed)
		}
	}
	for i, data := range localData {
		if len(data) == 0 {
			return nil, fmt.Errorf("fl: vehicle %d has no local data", i)
		}
		s.vehicles = append(s.vehicles, &Vehicle{
			ID:    i,
			Data:  data,
			Model: shared.Clone(),
			rng:   rand.New(rand.NewSource(cfg.Seed + 100 + int64(i))),
		})
	}
	return s, nil
}

func cloneRows(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = append([]float64(nil), r...)
	}
	return out
}

// Shared returns the fusion centre's current shared model (live, not a
// copy — callers evaluate it between rounds).
func (s *System) Shared() *nn.Network { return s.shared }

// NumVehicles returns V.
func (s *System) NumVehicles() int { return len(s.vehicles) }

// Round returns the number of completed global rounds.
func (s *System) Round() int { return s.round }

// ReferenceFeatures returns the fusion centre's reference features
// (copies).
func (s *System) ReferenceFeatures() [][]float64 { return cloneRows(s.refX) }

// Scheme is the pluggable estimation-upload-and-aggregation strategy that
// distinguishes the comparison models.
type Scheme interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// BeginRound hands the scheme the broadcast shared model at the start
	// of every round (a private clone). Coded schemes use it for the
	// verification channel: every honest vehicle evaluates this same
	// model on its encoded share, so honest verification uploads are
	// exact evaluations of one polynomial.
	BeginRound(shared *nn.Network) error
	// Upload computes what the vehicle with the given ID sends to the
	// fusion centre from its locally-trained model. Coded schemes depend
	// on the ID: vehicle i evaluates at its own point ρ_i.
	Upload(vehicleID int, model *nn.Network) ([]float64, error)
	// Aggregate combines the received uploads (row per vehicle; Dropped
	// marks lost scalars) into one estimation target per reference
	// sample, in reference order.
	Aggregate(uploads [][]float64) ([]float64, error)
}

// UploadSink ingests one round's uploads as they arrive, so a pipelined
// driver (package node) can overlap decode work with the collection
// window instead of holding everything for the round barrier. Add is
// not safe for concurrent use — the driver feeds it from its single
// collection loop. The upload slice handed to Add must be the same row
// later passed to the aggregation call; a nil upload is a no-op.
type UploadSink interface {
	Add(vehicleID int, upload []float64) error
}

// StreamingAggregator is an optional Scheme extension. A scheme that
// implements it can absorb uploads incrementally during the collection
// window; AggregateStreamed then consumes the sink's accumulated state
// where it applies and MUST return results bit-identical to
// Aggregate(uploads) — streaming is a latency optimisation, never a
// semantic change. The sink is single-use: one BeginIngest per round.
type StreamingAggregator interface {
	Scheme
	BeginIngest() UploadSink
	AggregateStreamed(sink UploadSink, uploads [][]float64) ([]float64, error)
}

// RoundStats reports what happened during one global round.
type RoundStats struct {
	// Round is the 1-based round number.
	Round int
	// MeanLocalLoss averages the vehicles' final local training losses.
	MeanLocalLoss float64
	// Targets are the aggregated per-reference-sample estimation targets
	// the shared model was distilled toward.
	Targets []float64
	// DistillLoss is the shared model's final distillation loss.
	DistillLoss float64
	// DroppedScalars counts channel losses this round.
	DroppedScalars int
}

// RunRound executes one global round under the given scheme, adversary
// plan (nil means all-honest) and channel model (nil means perfect).
func (s *System) RunRound(scheme Scheme, plan *adversary.Plan, ch channel.Model) (*RoundStats, error) {
	if scheme == nil {
		return nil, fmt.Errorf("fl: scheme is required")
	}
	if ch == nil {
		ch = channel.Perfect{}
	}
	// Mobility-driven channels advance their simulation once per round.
	if rs, ok := ch.(interface{ RoundStart() }); ok {
		rs.RoundStart()
	}
	sharedParams := s.shared.Params()
	if err := scheme.BeginRound(s.shared.Clone()); err != nil {
		return nil, fmt.Errorf("fl: scheme begin round: %w", err)
	}

	stats := &RoundStats{Round: s.round + 1}
	uploads := make([][]float64, len(s.vehicles))
	// roundCtx is the round's span context; every span this round emits
	// parents under it, and the scheme's core.aggregate span joins the
	// same tree via SetSpanParent. Zero with tracing off.
	var roundCtx obs.SpanContext
	roundFields := []obs.Field{obs.F("round", stats.Round), obs.F("scheme", scheme.Name())}
	if s.obs.TraceEnabled() {
		roundCtx = obs.SpanContext{Trace: s.trace, Span: obs.DeriveSpan(s.trace, "fl.round", uint64(stats.Round))}
		roundFields = append(roundFields, obs.CtxFields(roundCtx, 0)...)
	}
	roundSpan := s.obs.Start("fl.round", roundFields...)
	s.obs.Emit("round.start", obs.F("round", stats.Round), obs.F("vehicles", len(s.vehicles)))

	// Steps 1–3a: broadcast, local training (eq. 1), and honest upload,
	// fanned out across the pool. Each vehicle mutates only its own model
	// with its own RNG stream and writes only its own result slot, so the
	// outcome is independent of scheduling. Schemes are read-only during
	// Upload (they mutate state in BeginRound/Aggregate only).
	// Per-vehicle durations are recorded into trainNs slots here and
	// emitted sequentially below, so trace event ORDER never depends on
	// pool scheduling (only the timing values do).
	honest := make([][]float64, len(s.vehicles))
	losses := make([]float64, len(s.vehicles))
	var trainNs []int64
	if s.obs.Enabled() {
		trainNs = make([]int64, len(s.vehicles))
	}
	err := parallel.ForEach(parallel.Workers(s.cfg.Workers), len(s.vehicles), func(i int) error {
		v := s.vehicles[i]
		var t0 time.Duration
		if trainNs != nil {
			t0 = s.obs.Now()
		}
		if err := v.Model.SetParams(sharedParams); err != nil {
			return fmt.Errorf("fl: vehicle %d: %w", v.ID, err)
		}
		loss, err := v.Model.TrainSGDProximal(v.Data, s.cfg.LocalRate, s.cfg.LocalEpochs, v.rng, s.cfg.ProximalMu, sharedParams)
		if err != nil {
			return fmt.Errorf("fl: vehicle %d training: %w", v.ID, err)
		}
		losses[i] = loss
		up, err := scheme.Upload(v.ID, v.Model)
		if err != nil {
			return fmt.Errorf("fl: vehicle %d upload: %w", v.ID, err)
		}
		honest[i] = up
		if trainNs != nil {
			trainNs[i] = int64(s.obs.Now() - t0)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if s.obs.Enabled() {
		for i, v := range s.vehicles {
			s.hTrainNs.Observe(trainNs[i])
			if s.obs.TraceEnabled() {
				vehicleCtx := obs.SpanContext{Trace: s.trace,
					Span: obs.DeriveSpan(s.trace, "fl.vehicle", uint64(stats.Round), uint64(v.ID))}
				fields := append([]obs.Field{
					obs.F("round", stats.Round),
					obs.F("vehicle", v.ID),
					obs.F("train_ns", trainNs[i]),
					obs.F("loss", losses[i]),
				}, obs.CtxFields(vehicleCtx, roundCtx.Span)...)
				s.obs.Emit("fl.vehicle", fields...)
			}
		}
	}

	// Step 3b: adversary and channel, applied SEQUENTIALLY in vehicle
	// order. The corruption behaviours and channel models consume shared
	// seeded RNG streams whose draw order is part of the reproducibility
	// contract; keeping this cheap scalar pass off the pool preserves the
	// exact sequential stream at every worker count.
	var lossSum float64
	for i, v := range s.vehicles {
		lossSum += losses[i]
		up := honest[i]
		sent := make([]float64, len(up))
		for j, h := range up {
			val := h
			if plan != nil {
				val = plan.Apply(v.ID, val)
			}
			rec := ch.Transmit(v.ID, val)
			if rec.Dropped {
				sent[j] = Dropped
				stats.DroppedScalars++
			} else {
				sent[j] = rec.Value
			}
		}
		uploads[v.ID] = sent
	}
	stats.MeanLocalLoss = lossSum / float64(len(s.vehicles))

	// Step 4: aggregation and distillation update. The scheme's own
	// core.aggregate span (when it has one) nests under this fl.aggregate
	// span via SetSpanParent.
	aggFields := []obs.Field{obs.F("round", stats.Round)}
	var aggCtx obs.SpanContext
	if roundCtx.Valid() {
		aggCtx = obs.SpanContext{Trace: s.trace, Span: obs.DeriveSpan(s.trace, "fl.aggregate", uint64(stats.Round))}
		aggFields = append(aggFields, obs.CtxFields(aggCtx, roundCtx.Span)...)
	}
	if sp, ok := scheme.(interface{ SetSpanParent(obs.SpanContext) }); ok {
		sp.SetSpanParent(aggCtx)
	}
	aggSpan := s.obs.Start("fl.aggregate", aggFields...)
	targets, err := scheme.Aggregate(uploads)
	aggSpan.End()
	if err != nil {
		return nil, fmt.Errorf("fl: aggregate: %w", err)
	}
	if len(targets) != len(s.refX) {
		return nil, fmt.Errorf("fl: scheme produced %d targets for %d reference samples", len(targets), len(s.refX))
	}
	stats.Targets = targets

	distill := make([]nn.Sample, 0, len(targets))
	for j, target := range targets {
		if IsDropped(target) {
			continue // aggregation could not recover this sample
		}
		distill = append(distill, nn.Sample{X: s.refX[j], Y: clamp01(target)})
	}
	if len(distill) == 0 {
		return nil, fmt.Errorf("fl: no usable estimation targets this round")
	}
	dl, err := s.distill(distill)
	if err != nil {
		return nil, fmt.Errorf("fl: distillation: %w", err)
	}
	stats.DistillLoss = dl
	s.round++
	if s.obs.Enabled() {
		s.cRounds.Inc()
		s.cDropped.Add(int64(stats.DroppedScalars))
	}
	roundSpan.End(
		obs.F("mean_local_loss", stats.MeanLocalLoss),
		obs.F("distill_loss", stats.DistillLoss),
		obs.F("dropped_scalars", stats.DroppedScalars))
	return stats, nil
}

// distill updates the shared model toward the estimation targets.
func (s *System) distill(samples []nn.Sample) (float64, error) {
	return Distill(s.shared, s.cfg, samples)
}

// Distill updates a shared model toward per-sample estimation targets —
// the fusion centre's update step, exported so the distributed runtime
// (package node) can reuse it. For the paper's single-nonlinear-layer
// model the fit has a closed form — invert the activation on the targets
// (π = (1+tanh(z/2))/2 ⇒ z = 2·artanh(2π−1)) and solve the linear
// least-squares problem for the weights — which is deterministic and free
// of gradient-descent oscillation. Deeper baseline models fall back to
// full-batch gradient descent.
func Distill(shared *nn.Network, cfg Config, samples []nn.Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("fl: no distillation samples")
	}
	if len(cfg.Hidden) != 0 {
		return shared.TrainFullBatch(samples, cfg.DistillRate, cfg.DistillEpochs)
	}
	n := len(samples)
	// The logit fit must stay inside the activation's valid range. The
	// exact symmetric sigmoid is monotone everywhere, so ±3.9 (π clamped
	// to [0.02, 0.98]) is fine; a polynomial approximation is only
	// faithful on its fit interval (the paper's [-2, 2]) and turns
	// non-monotone beyond it — target logits outside that range would
	// drive pre-activations into the region where the polynomial
	// decreases again and scramble the model's predictions.
	zmax := 3.9
	if shared.Activation().Poly != nil {
		zmax = 2
	}
	piMax := (1 + math.Tanh(zmax/2)) / 2
	a := linalg.NewMatrix(n, cfg.InputSize+1)
	z := make([]float64, n)
	for i, smp := range samples {
		for j, v := range smp.X {
			a.Set(i, j, v)
		}
		a.Set(i, cfg.InputSize, 1) // bias column
		pi := math.Min(piMax, math.Max(1-piMax, smp.Y))
		z[i] = 2 * math.Atanh(2*pi-1)
	}
	// Ridge regularisation keeps the fit well-posed when a rare-event
	// feature is constant over the reference set (collinear with bias),
	// and — equally important — keeps the weight vector bounded along
	// nearly-collinear feature directions. Unregularised weights can grow
	// huge there while cancelling on the data manifold; Lagrange-encoded
	// inputs leave that manifold, so runaway weights would make honest
	// encoded estimations explode. λ scales with the sample count to
	// track the magnitude of AᵀA.
	wb, err := linalg.RidgeLeastSquares(a, z, 1e-3*float64(n))
	if err != nil {
		// Degenerate reference geometry: fall back to gradient descent.
		return shared.TrainFullBatch(samples, cfg.DistillRate, cfg.DistillEpochs)
	}
	// Damped server update: move partway from the current parameters to
	// the closed-form fit.
	alpha := cfg.serverStep()
	old := shared.Params()
	for i := range wb {
		wb[i] = old[i] + alpha*(wb[i]-old[i])
	}
	if err := shared.SetParams(wb); err != nil {
		return 0, err
	}
	shared.ProjectWeights()
	var total float64
	for _, smp := range samples {
		l, err := shared.Loss(smp.X, smp.Y)
		if err != nil {
			return 0, err
		}
		total += l
	}
	return total / float64(n), nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Accuracy evaluates the shared model's classification accuracy on a test
// set (threshold 0.5 on the estimation result π).
func (s *System) Accuracy(test []nn.Sample) (float64, error) {
	return ModelAccuracy(s.shared, test)
}

// ModelAccuracy is Accuracy for an arbitrary model.
func ModelAccuracy(m *nn.Network, test []nn.Sample) (float64, error) {
	if len(test) == 0 {
		return 0, fmt.Errorf("fl: empty test set")
	}
	correct := 0
	for _, t := range test {
		pi, err := m.Estimate(t.X)
		if err != nil {
			return 0, err
		}
		if (pi > 0.5) == (t.Y == 1) {
			correct++
		}
	}
	return float64(correct) / float64(len(test)), nil
}

// MeanEstimate returns the mean estimation result of the shared model over
// a feature set — the per-round trace of the paper's Fig. 4.
func (s *System) MeanEstimate(features [][]float64) (float64, error) {
	if len(features) == 0 {
		return 0, fmt.Errorf("fl: empty feature set")
	}
	var sum float64
	for _, x := range features {
		pi, err := s.shared.EstimateClamped(x)
		if err != nil {
			return 0, err
		}
		sum += pi
	}
	return sum / float64(len(features)), nil
}

// FedAvg averages parameter vectors elementwise — the classic aggregation
// of paper eq. 2, provided for the traditional parameter-upload FL mode
// and its tests. All vectors must share one length.
func FedAvg(params [][]float64) ([]float64, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("fl: FedAvg over zero vectors")
	}
	n := len(params[0])
	out := make([]float64, n)
	for i, p := range params {
		if len(p) != n {
			return nil, fmt.Errorf("fl: FedAvg vector %d has length %d, want %d", i, len(p), n)
		}
		linalg.VecAddInPlace(out, p)
	}
	for i := range out {
		out[i] /= float64(len(params))
	}
	return out, nil
}
