package fl

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/approx"
	"repro/internal/channel"
)

func TestRunParamRoundHonestLearns(t *testing.T) {
	sys, test := buildSystem(t, 10, approx.SymmetricSigmoid())
	accBefore, err := sys.Accuracy(test.Samples)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 20
	var tail float64
	for r := 0; r < rounds; r++ {
		stats, err := sys.RunParamRound(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Round != r+1 {
			t.Fatalf("round accounting %d", stats.Round)
		}
		if r >= rounds-5 {
			a, err := sys.Accuracy(test.Samples)
			if err != nil {
				t.Fatal(err)
			}
			tail += a / 5
		}
	}
	if tail < accBefore || tail < 0.75 {
		t.Errorf("FedAvg accuracy %g (start %g) — not learning", tail, accBefore)
	}
}

func TestRunParamRoundPoisoned(t *testing.T) {
	// The classic weakness: one scaled-sign-flip participant per ten
	// drags the averaged parameters; accuracy must visibly lag the honest
	// run. This is the baseline L-CoFL's estimation-upload design avoids.
	honest, test := buildSystem(t, 10, approx.SymmetricSigmoid())
	attacked, _ := buildSystem(t, 10, approx.SymmetricSigmoid())
	plan, err := adversary.NewPlan(10, 0.3, adversary.SignFlipScale{Scale: 5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var honestAcc, attackedAcc float64
	const rounds = 12
	for r := 0; r < rounds; r++ {
		if _, err := honest.RunParamRound(nil, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := attacked.RunParamRound(plan, nil); err != nil {
			t.Fatal(err)
		}
		if r >= rounds-5 {
			a, err := honest.Accuracy(test.Samples)
			if err != nil {
				t.Fatal(err)
			}
			b, err := attacked.Accuracy(test.Samples)
			if err != nil {
				t.Fatal(err)
			}
			honestAcc += a / 5
			attackedAcc += b / 5
		}
	}
	if attackedAcc >= honestAcc-0.05 {
		t.Errorf("parameter poisoning had no effect: honest %g vs attacked %g", honestAcc, attackedAcc)
	}
}

func TestRunParamRoundDrops(t *testing.T) {
	sys, _ := buildSystem(t, 6, approx.SymmetricSigmoid())
	er, err := channel.NewErasure(0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sys.RunParamRound(nil, er)
	if err != nil {
		t.Fatal(err)
	}
	// With 17 scalars per vehicle at p=0.02 some vehicle almost surely
	// loses a scalar and is dropped whole.
	if stats.DroppedScalars == 0 {
		t.Log("no drops this seed — acceptable but unusual")
	}
	// Total loss of all vehicles must error out rather than average nothing.
	all, err := channel.NewErasure(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunParamRound(nil, all); err == nil {
		t.Error("round with zero surviving uploads succeeded")
	}
}

func TestDistillHiddenLayerPath(t *testing.T) {
	// Multi-layer shared models take the full-batch gradient-descent
	// distillation path (the closed logit form only fits a single layer).
	cfg := testConfig()
	cfg.Hidden = []int{6}
	cfg.DistillEpochs = 40
	cfg.DistillRate = 0.5
	sys, test := buildSystemWith(t, 8, approx.SymmetricSigmoid(), cfg)
	scheme, err := NewPlainScheme(sys.ReferenceFeatures())
	if err != nil {
		t.Fatal(err)
	}
	accBefore, err := sys.Accuracy(test.Samples)
	if err != nil {
		t.Fatal(err)
	}
	var tail float64
	const rounds = 15
	for r := 0; r < rounds; r++ {
		if _, err := sys.RunRound(scheme, nil, nil); err != nil {
			t.Fatal(err)
		}
		if r >= rounds-5 {
			a, err := sys.Accuracy(test.Samples)
			if err != nil {
				t.Fatal(err)
			}
			tail += a / 5
		}
	}
	if tail < accBefore-0.05 {
		t.Errorf("hidden-layer distillation regressed: %g -> %g", accBefore, tail)
	}
}
