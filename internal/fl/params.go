package fl

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/channel"
	"repro/internal/parallel"
)

// RunParamRound executes one round of TRADITIONAL parameter-upload FL —
// the approach the paper contrasts L-CoFL against (§II: "the vehicles may
// suffer from privacy leakage during the exchange of model parameters").
// Every vehicle trains locally from the broadcast model and uploads its
// full parameter vector; the fusion centre averages them (FedAvg, paper
// eq. 2) into the new shared model.
//
// The mode exists as a baseline and for library completeness: it shows
// both the larger upload (NumParams scalars of sensitive parameters
// instead of estimation results) and the total absence of protection — a
// single malicious parameter vector shifts the average of every weight.
func (s *System) RunParamRound(plan *adversary.Plan, ch channel.Model) (*RoundStats, error) {
	if ch == nil {
		ch = channel.Perfect{}
	}
	if rs, ok := ch.(interface{ RoundStart() }); ok {
		rs.RoundStart()
	}
	sharedParams := s.shared.Params()

	stats := &RoundStats{Round: s.round + 1}

	// Train in parallel (per-vehicle models and RNG streams), then apply
	// adversary and channel sequentially in vehicle order — the same
	// determinism split as RunRound.
	losses := make([]float64, len(s.vehicles))
	params := make([][]float64, len(s.vehicles))
	err := parallel.ForEach(parallel.Workers(s.cfg.Workers), len(s.vehicles), func(i int) error {
		v := s.vehicles[i]
		if err := v.Model.SetParams(sharedParams); err != nil {
			return fmt.Errorf("fl: vehicle %d: %w", v.ID, err)
		}
		loss, err := v.Model.TrainSGDProximal(v.Data, s.cfg.LocalRate, s.cfg.LocalEpochs, v.rng, s.cfg.ProximalMu, sharedParams)
		if err != nil {
			return fmt.Errorf("fl: vehicle %d training: %w", v.ID, err)
		}
		losses[i] = loss
		params[i] = v.Model.Params()
		return nil
	})
	if err != nil {
		return nil, err
	}

	var received [][]float64
	var lossSum float64
	for i, v := range s.vehicles {
		lossSum += losses[i]
		upload := params[i]
		vector := make([]float64, len(upload))
		dropped := false
		for j, honest := range upload {
			val := honest
			if plan != nil {
				val = plan.Apply(v.ID, val)
			}
			rec := ch.Transmit(v.ID, val)
			if rec.Dropped {
				// Parameter vectors are all-or-nothing: a partial vector
				// is useless, so any dropped scalar drops the vehicle.
				dropped = true
				stats.DroppedScalars++
				break
			}
			vector[j] = rec.Value
		}
		if !dropped {
			received = append(received, vector)
		}
	}
	stats.MeanLocalLoss = lossSum / float64(len(s.vehicles))
	if len(received) == 0 {
		return nil, fmt.Errorf("fl: no parameter uploads survived the round")
	}
	avg, err := FedAvg(received)
	if err != nil {
		return nil, err
	}
	if err := s.shared.SetParams(avg); err != nil {
		return nil, err
	}
	s.shared.ProjectWeights()
	s.round++
	return stats, nil
}
