//go:build !race

package lagrange

const raceEnabled = false
