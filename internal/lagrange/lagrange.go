// Package lagrange implements the Lagrange-coded-computing (LCC) encoder of
// the L-CoFL paper.
//
// Data is partitioned into M batches X_1..X_M. The encoder associates batch
// m with a node ℓ_m and worker (vehicle) i with an evaluation point ρ_i,
// builds the Lagrange interpolation polynomial
//
//	H(z) = Σ_m X_m · Π_{n≠m} (z-ℓ_n)/(ℓ_m-ℓ_n)        (paper eq. 3)
//
// which satisfies H(ℓ_m) = X_m, and hands worker i the encoded share
// X̃_i = H(ρ_i) (paper eq. 4). Equivalently X̃_i = Σ_m p_m(ρ_i)·X_m with
// basis weights p_m summing to one (paper eq. 8). A polynomial computation
// C applied by every worker then yields evaluations of C(H(z)), which the
// fusion centre decodes with package reedsolomon.
//
// Two parallel implementations are provided: exact encoding over GF(p) for
// the error-corrected path, and float64 encoding (with the Σ|p_m| ≤ D
// element-selection rule of paper eq. 9) for the real-valued FL pipeline.
package lagrange

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Coder encodes batches over GF(p) with fixed nodes and worker points.
// It precomputes the basis denominators and the full V×M worker-weight
// matrix p_m(ρ_i), so per-worker encoding is a cached-matrix kernel:
// O(M) lazy-reduced multiplications per batch element with zero weight
// recomputation per call.
type Coder struct {
	nodes    []field.Element   // ℓ_1..ℓ_M, one per batch
	points   []field.Element   // ρ_1..ρ_V, one per worker
	denomInv []field.Element   // 1 / Π_{n≠m}(ℓ_m - ℓ_n)
	weights  [][]field.Element // weights[i][m] = p_m(ρ_i), cached at construction
	workers  int               // pool width for EncodeVectors/EvalAtNodes; 1 = sequential

	// accPool recycles the per-chunk lazy accumulators of the vector
	// encode so a steady-state EncodeVectorsInto allocates nothing: each
	// pool worker takes one accumulator per chunk and returns it drained.
	// Widths vary per call, so getAcc discards pooled accumulators of the
	// wrong width (they are garbage-collected, not leaked).
	accPool sync.Pool

	// Observability handles, resolved once in SetObs so the encode hot
	// path pays one nil check when disabled and atomic ops when enabled —
	// never a registry lookup.
	obs         *obs.Obs
	cEncCalls   *obs.Counter
	cEncWords   *obs.Counter
	hEncVectors *obs.Histogram
}

// NewCoder validates that nodes and points are pairwise distinct and
// mutually disjoint (the paper requires {ℓ_m} ∩ {ρ_i} = ∅) and returns a
// ready Coder.
func NewCoder(nodes, points []field.Element) (*Coder, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("lagrange: need at least one batch node")
	}
	all := make([]field.Element, 0, len(nodes)+len(points))
	all = append(all, nodes...)
	all = append(all, points...)
	if !field.Distinct(all) {
		return nil, fmt.Errorf("lagrange: nodes and points must be pairwise distinct and disjoint")
	}
	// Denominators are inverted in one BatchInv pass (Montgomery's trick:
	// one Inv plus 3(M-1) multiplications) instead of M full inversions.
	denomInv := make([]field.Element, len(nodes))
	for m := range nodes {
		d := field.One
		for n := range nodes {
			if n != m {
				d = d.Mul(nodes[m].Sub(nodes[n]))
			}
		}
		denomInv[m] = d
	}
	field.BatchInv(denomInv)
	c := &Coder{
		nodes:    append([]field.Element(nil), nodes...),
		points:   append([]field.Element(nil), points...),
		denomInv: denomInv,
		workers:  1,
	}
	// The worker points are fixed for the coder's lifetime, so the V×M
	// basis-weight matrix is computed exactly once here; every encode call
	// then reads cached rows instead of re-running the weight recurrence
	// per point per call. One flat backing array keeps the rows contiguous.
	flat := make([]field.Element, len(points)*len(nodes))
	c.weights = make([][]field.Element, len(points))
	s := newWeightScratch(len(nodes))
	for i, pt := range c.points {
		row := flat[i*len(nodes) : (i+1)*len(nodes)]
		c.weightsInto(pt, s)
		copy(row, s.w)
		c.weights[i] = row
	}
	return c, nil
}

// SetParallelism fixes the worker count EncodeVectors, EncodeScalars and
// EvalAtNodes fan out across (values < 1 select GOMAXPROCS). Results are
// bit-identical at every worker count; only wall-clock changes. The
// default is 1 (sequential).
func (c *Coder) SetParallelism(workers int) {
	c.workers = parallel.Workers(workers)
}

// SetObs attaches an observability handle: EncodeVectors then counts
// calls and encoded words (lagrange.encode_calls / lagrange.encode_words),
// records wall time in the lagrange.encode_ns histogram, and emits a
// lagrange.encode trace event per call. A nil handle (the default)
// disables all of it at the cost of one pointer check per call.
func (c *Coder) SetObs(o *obs.Obs) {
	c.obs = o
	if o.Enabled() {
		c.cEncCalls = o.Counter("lagrange.encode_calls")
		c.cEncWords = o.Counter("lagrange.encode_words")
		c.hEncVectors = o.Histogram("lagrange.encode_ns", obs.LatencyBuckets())
	}
}

// NumBatches returns M, the number of interpolation nodes.
func (c *Coder) NumBatches() int { return len(c.nodes) }

// NumWorkers returns V, the number of worker evaluation points.
func (c *Coder) NumWorkers() int { return len(c.points) }

// Nodes returns a copy of the batch nodes ℓ_m.
func (c *Coder) Nodes() []field.Element {
	return append([]field.Element(nil), c.nodes...)
}

// Points returns a copy of the worker points ρ_i.
func (c *Coder) Points() []field.Element {
	return append([]field.Element(nil), c.points...)
}

// WeightsAt returns the Lagrange basis weights p_m(z) for an arbitrary
// evaluation position z. If z coincides with a node ℓ_m the weights are
// the indicator of that node (H(ℓ_m) = X_m).
func (c *Coder) WeightsAt(z field.Element) []field.Element {
	s := newWeightScratch(len(c.nodes))
	c.weightsInto(z, s)
	return s.w
}

// weightScratch holds the per-evaluation buffers of the basis-weight
// recurrence so hot loops (and each pool worker) allocate them once and
// reuse them across evaluation points.
type weightScratch struct {
	w      []field.Element
	prefix []field.Element
}

func newWeightScratch(m int) *weightScratch {
	return &weightScratch{
		w:      make([]field.Element, m),
		prefix: make([]field.Element, m+1),
	}
}

// weightsInto computes the basis weights p_m(z) into s.w.
func (c *Coder) weightsInto(z field.Element, s *weightScratch) {
	// prefix[m] = Π_{n<m}(z-ℓ_n), suffix accumulated backwards: O(M).
	s.prefix[0] = field.One
	for m, node := range c.nodes {
		s.prefix[m+1] = s.prefix[m].Mul(z.Sub(node))
	}
	suffix := field.One
	for m := len(c.nodes) - 1; m >= 0; m-- {
		s.w[m] = s.prefix[m].Mul(suffix).Mul(c.denomInv[m])
		suffix = suffix.Mul(z.Sub(c.nodes[m]))
	}
}

// WorkerWeights returns a copy of the cached basis weights p_m(ρ_i) for
// worker i.
func (c *Coder) WorkerWeights(i int) []field.Element {
	return append([]field.Element(nil), c.weights[i]...)
}

// forEachChunk splits [0, n) into one contiguous chunk per pool worker
// and runs fn on the chunks concurrently. Chunk-private scratch (weight
// buffers, lazy accumulators) is allocated inside fn, once per chunk
// rather than once per index. Output slots are disjoint by index, so
// results are bit-identical to a sequential loop regardless of the
// worker count.
func (c *Coder) forEachChunk(n int, fn func(lo, hi int)) {
	workers := c.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	// fn never fails; ForEach is used for its pool and panic plumbing.
	_ = parallel.ForEach(workers, workers, func(ci int) error {
		lo, hi := ci*n/workers, (ci+1)*n/workers
		if lo < hi {
			fn(lo, hi)
		}
		return nil
	})
}

// EncodeScalars encodes scalar batches: given one field element per batch,
// it returns X̃_i = Σ_m p_m(ρ_i)·X_m for every worker.
func (c *Coder) EncodeScalars(batches []field.Element) ([]field.Element, error) {
	if len(batches) != len(c.nodes) {
		return nil, fmt.Errorf("lagrange: got %d batches, coder has %d nodes", len(batches), len(c.nodes))
	}
	out := make([]field.Element, len(c.points))
	c.forEachChunk(len(c.points), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = field.DotAcc(c.weights[i], batches)
		}
	})
	return out, nil
}

// encodeRange encodes worker points [lo, hi) into dst with one pooled
// accumulator — the chunk body of EncodeVectorsInto.
func (c *Coder) encodeRange(batches, dst [][]field.Element, lo, hi int) {
	width := 0
	if len(batches) > 0 {
		width = len(batches[0])
	}
	acc := c.getAcc(width)
	for i := lo; i < hi; i++ {
		for m, b := range batches {
			acc.VecMulAddScalar(c.weights[i][m], b)
		}
		acc.Reduce(dst[i])
	}
	c.accPool.Put(acc)
}

// getAcc takes a pooled accumulator of the given width, allocating only
// when the pool is empty or holds one of a different width.
func (c *Coder) getAcc(width int) *field.Accumulator {
	if a, ok := c.accPool.Get().(*field.Accumulator); ok && a.Len() == width {
		return a
	}
	return field.NewAccumulator(width)
}

// EncodeVectors encodes vector batches (each batch a slice of equal
// length): the m-th batch is a data vector, and worker i receives the
// componentwise combination Σ_m p_m(ρ_i)·X_m. The per-worker rows are
// carved from one flat allocation; callers that reuse output buffers
// across rounds should call EncodeVectorsInto, which allocates nothing
// in steady state.
func (c *Coder) EncodeVectors(batches [][]field.Element) ([][]field.Element, error) {
	if len(batches) != len(c.nodes) {
		return nil, fmt.Errorf("lagrange: got %d batches, coder has %d nodes", len(batches), len(c.nodes))
	}
	width := len(batches[0])
	flat := make([]field.Element, len(c.points)*width)
	out := make([][]field.Element, len(c.points))
	for i := range out {
		out[i] = flat[i*width : (i+1)*width : (i+1)*width]
	}
	if err := c.EncodeVectorsInto(batches, out); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeVectorsInto is EncodeVectors with caller-provided destination
// rows: dst must hold one slice of the common batch width per worker
// point. Steady-state calls allocate nothing — the lazy accumulators
// come from a pool and every write lands in dst — which makes this the
// hot-path form for per-round re-encoding.
func (c *Coder) EncodeVectorsInto(batches [][]field.Element, dst [][]field.Element) error {
	if len(batches) != len(c.nodes) {
		return fmt.Errorf("lagrange: got %d batches, coder has %d nodes", len(batches), len(c.nodes))
	}
	width := len(batches[0])
	for m, b := range batches {
		if len(b) != width {
			return fmt.Errorf("lagrange: batch %d has length %d, want %d", m, len(b), width)
		}
	}
	if len(dst) != len(c.points) {
		return fmt.Errorf("lagrange: %d destination rows for %d worker points", len(dst), len(c.points))
	}
	for i, row := range dst {
		if len(row) != width {
			return fmt.Errorf("lagrange: destination row %d has length %d, want %d", i, len(row), width)
		}
	}
	var start time.Duration
	if c.obs.Enabled() {
		start = c.obs.Now()
	}
	// The sequential path calls the chunk worker directly: a closure
	// handed to forEachChunk escapes to the heap, which would be the one
	// allocation left on the zero-alloc hot path.
	if c.workers <= 1 || len(c.points) <= 1 {
		c.encodeRange(batches, dst, 0, len(c.points))
	} else {
		c.forEachChunk(len(c.points), func(lo, hi int) {
			c.encodeRange(batches, dst, lo, hi)
		})
	}
	if c.obs.Enabled() {
		elapsed := c.obs.Now() - start
		c.cEncCalls.Inc()
		c.cEncWords.Add(int64(len(c.points) * width))
		c.hEncVectors.Observe(int64(elapsed))
		c.obs.EmitSpan("lagrange.encode", start, elapsed,
			obs.F("batches", len(batches)),
			obs.F("width", width),
			obs.F("workers_out", len(c.points)))
	}
	return nil
}

// EvalAtNodes evaluates the degree-(M-1) interpolation of the given batch
// values at arbitrary targets — used by the decoder to read off
// C(X_m) = C(H(ℓ_m)) from the reconstructed composition polynomial.
func (c *Coder) EvalAtNodes(batches []field.Element, targets []field.Element) ([]field.Element, error) {
	if len(batches) != len(c.nodes) {
		return nil, fmt.Errorf("lagrange: got %d batches, coder has %d nodes", len(batches), len(c.nodes))
	}
	out := make([]field.Element, len(targets))
	c.forEachChunk(len(targets), func(lo, hi int) {
		// Targets are arbitrary (not the fixed worker points), so their
		// weights cannot come from the cache; the recurrence runs with
		// chunk-private scratch as before.
		s := newWeightScratch(len(c.nodes))
		for t := lo; t < hi; t++ {
			c.weightsInto(targets[t], s)
			out[t] = field.DotAcc(s.w, batches)
		}
	})
	return out, nil
}

// RealCoder is the float64 counterpart of Coder, used on the FL pipeline
// where model evaluations are real-valued. It additionally reports the
// redundancy bound D = max_i Σ_m |p_m(ρ_i)| from paper eq. 9, which
// callers compare against the approximation domain.
type RealCoder struct {
	nodes   []float64
	points  []float64
	denom   []float64
	weights [][]float64 // weights[i][m] = p_m(ρ_i), cached at construction
	redund  float64     // D = max_i Σ_m |p_m(ρ_i)|, cached at construction
}

// NewRealCoder validates distinctness/disjointness and returns the coder.
func NewRealCoder(nodes, points []float64) (*RealCoder, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("lagrange: need at least one batch node")
	}
	all := append(append([]float64(nil), nodes...), points...)
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[i] == all[j] {
				return nil, fmt.Errorf("lagrange: nodes and points must be distinct (duplicate %g)", all[i])
			}
		}
	}
	denom := make([]float64, len(nodes))
	for m := range nodes {
		d := 1.0
		for n := range nodes {
			if n != m {
				d *= nodes[m] - nodes[n]
			}
		}
		denom[m] = d
	}
	c := &RealCoder{
		nodes:  append([]float64(nil), nodes...),
		points: append([]float64(nil), points...),
		denom:  denom,
	}
	// Mirror of the GF(p) coder: the worker points are fixed, so the
	// float weight matrix and the eq. 9 redundancy bound are computed
	// once here instead of per encode/Redundancy call.
	c.weights = make([][]float64, len(c.points))
	for i, pt := range c.points {
		c.weights[i] = c.WeightsAt(pt)
		var s float64
		for _, w := range c.weights[i] {
			s += math.Abs(w)
		}
		if s > c.redund {
			c.redund = s
		}
	}
	return c, nil
}

// NumBatches returns M.
func (c *RealCoder) NumBatches() int { return len(c.nodes) }

// NumWorkers returns V.
func (c *RealCoder) NumWorkers() int { return len(c.points) }

// Nodes returns a copy of the batch nodes.
func (c *RealCoder) Nodes() []float64 { return append([]float64(nil), c.nodes...) }

// Points returns a copy of the worker points.
func (c *RealCoder) Points() []float64 { return append([]float64(nil), c.points...) }

// WeightsAt returns the basis weights p_m(z).
func (c *RealCoder) WeightsAt(z float64) []float64 {
	w := make([]float64, len(c.nodes))
	prefix := make([]float64, len(c.nodes)+1)
	prefix[0] = 1
	for m, node := range c.nodes {
		prefix[m+1] = prefix[m] * (z - node)
	}
	suffix := 1.0
	for m := len(c.nodes) - 1; m >= 0; m-- {
		w[m] = prefix[m] * suffix / c.denom[m]
		suffix *= z - c.nodes[m]
	}
	return w
}

// WorkerWeights returns a copy of the cached weights p_m(ρ_i) for worker i.
func (c *RealCoder) WorkerWeights(i int) []float64 {
	return append([]float64(nil), c.weights[i]...)
}

// Redundancy returns D = max over workers of Σ_m |p_m(ρ_i)|: the factor by
// which encoding can expand data normalised to [-1, 1] (paper eq. 9).
// The bound is precomputed at construction.
func (c *RealCoder) Redundancy() float64 { return c.redund }

// EncodeScalars returns X̃_i = Σ_m p_m(ρ_i)·X_m for every worker.
func (c *RealCoder) EncodeScalars(batches []float64) ([]float64, error) {
	if len(batches) != len(c.nodes) {
		return nil, fmt.Errorf("lagrange: got %d batches, coder has %d nodes", len(batches), len(c.nodes))
	}
	out := make([]float64, len(c.points))
	for i := range c.points {
		var s float64
		for m, x := range batches {
			s += c.weights[i][m] * x
		}
		out[i] = s
	}
	return out, nil
}

// EncodeVectors encodes equal-length vector batches for every worker.
func (c *RealCoder) EncodeVectors(batches [][]float64) ([][]float64, error) {
	if len(batches) != len(c.nodes) {
		return nil, fmt.Errorf("lagrange: got %d batches, coder has %d nodes", len(batches), len(c.nodes))
	}
	width := len(batches[0])
	for m, b := range batches {
		if len(b) != width {
			return nil, fmt.Errorf("lagrange: batch %d has length %d, want %d", m, len(b), width)
		}
	}
	out := make([][]float64, len(c.points))
	for i := range c.points {
		w := c.weights[i]
		enc := make([]float64, width)
		for m, b := range batches {
			for j, x := range b {
				enc[j] += w[m] * x
			}
		}
		out[i] = enc
	}
	return out, nil
}

// ChebyshevNodes returns n Chebyshev points of the first kind on [lo, hi],
// ordered ascending. Using Chebyshev points as batch nodes minimises the
// Lebesgue constant and therefore the redundancy bound D of eq. 9 —
// this is the element-selection heuristic ablated in the benchmarks.
func ChebyshevNodes(n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		theta := math.Pi * (2*float64(k) + 1) / (2 * float64(n))
		x := math.Cos(theta) // descending in k
		out[n-1-k] = (lo+hi)/2 + (hi-lo)/2*x
	}
	return out
}

// EquispacedNodes returns n uniformly spaced points on [lo, hi] inclusive.
// The naive alternative to ChebyshevNodes; its Lebesgue constant grows
// exponentially in n, which the ablation benchmarks demonstrate.
func EquispacedNodes(n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = (lo + hi) / 2
		return out
	}
	for k := 0; k < n; k++ {
		out[k] = lo + (hi-lo)*float64(k)/float64(n-1)
	}
	return out
}

// InteriorPoints returns v worker points on (lo, hi) that avoid every node
// in nodes: it subdivides the interval uniformly with an offset and nudges
// any collision. Keeping ρ_i inside the node interval keeps Σ|p_m(ρ_i)|
// small, satisfying the Σ|p_m| ≤ D selection rule of eq. 9.
func InteriorPoints(v int, lo, hi float64, nodes []float64) []float64 {
	avoid := make(map[float64]struct{}, len(nodes))
	for _, n := range nodes {
		avoid[n] = struct{}{}
	}
	out := make([]float64, 0, v)
	step := (hi - lo) / float64(v+1)
	for k := 1; len(out) < v; k++ {
		x := lo + step*float64(k)
		for {
			if _, hit := avoid[x]; !hit {
				break
			}
			x += step * 1e-3
		}
		avoid[x] = struct{}{}
		out = append(out, x)
	}
	return out
}
