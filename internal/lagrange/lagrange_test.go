package lagrange

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/poly"
)

func mustCoder(t *testing.T, m, v int, seed int64) *Coder {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nodes := field.RandDistinct(rng, m, nil)
	points := field.RandDistinct(rng, v, nodes)
	c, err := NewCoder(nodes, points)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCoderValidation(t *testing.T) {
	one, two := field.New(1), field.New(2)
	if _, err := NewCoder(nil, []field.Element{one}); err == nil {
		t.Error("empty nodes accepted")
	}
	if _, err := NewCoder([]field.Element{one, one}, nil); err == nil {
		t.Error("duplicate nodes accepted")
	}
	if _, err := NewCoder([]field.Element{one}, []field.Element{one}); err == nil {
		t.Error("overlapping node/point accepted")
	}
	if _, err := NewCoder([]field.Element{one}, []field.Element{two, two}); err == nil {
		t.Error("duplicate points accepted")
	}
}

func TestWeightsPartitionOfUnity(t *testing.T) {
	// Paper eq. 8: Σ_m p_m(z) = 1 for every z, because the basis
	// interpolates the constant-1 polynomial exactly.
	c := mustCoder(t, 8, 20, 1)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		z := field.Rand(rng)
		if got := field.Sum(c.WeightsAt(z)); got != field.One {
			t.Fatalf("Σ p_m(%v) = %v, want 1", z, got)
		}
	}
}

func TestWeightsIndicatorAtNodes(t *testing.T) {
	c := mustCoder(t, 6, 4, 3)
	for m, node := range c.Nodes() {
		w := c.WeightsAt(node)
		for n := range w {
			want := field.Zero
			if n == m {
				want = field.One
			}
			if w[n] != want {
				t.Fatalf("p_%d(ℓ_%d) = %v, want %v", n, m, w[n], want)
			}
		}
	}
}

func TestEncodeScalarsMatchesPolynomial(t *testing.T) {
	// X̃_i must equal H(ρ_i) where H interpolates (ℓ_m, X_m).
	c := mustCoder(t, 5, 12, 4)
	rng := rand.New(rand.NewSource(5))
	batches := make([]field.Element, c.NumBatches())
	for i := range batches {
		batches[i] = field.Rand(rng)
	}
	h, err := poly.Interpolate(c.Nodes(), batches)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.EncodeScalars(batches)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range c.Points() {
		if want := h.Eval(p); enc[i] != want {
			t.Fatalf("X̃_%d = %v, want H(ρ_%d) = %v", i, enc[i], i, want)
		}
	}
}

func TestEncodeScalarsLengthMismatch(t *testing.T) {
	c := mustCoder(t, 4, 4, 6)
	if _, err := c.EncodeScalars(make([]field.Element, 3)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestEncodeVectors(t *testing.T) {
	c := mustCoder(t, 3, 7, 7)
	rng := rand.New(rand.NewSource(8))
	const width = 5
	batches := make([][]field.Element, c.NumBatches())
	for m := range batches {
		batches[m] = make([]field.Element, width)
		for j := range batches[m] {
			batches[m][j] = field.Rand(rng)
		}
	}
	enc, err := c.EncodeVectors(batches)
	if err != nil {
		t.Fatal(err)
	}
	// Component j of the vector encoding must equal the scalar encoding
	// of the j-th components.
	for j := 0; j < width; j++ {
		col := make([]field.Element, len(batches))
		for m := range batches {
			col[m] = batches[m][j]
		}
		want, err := c.EncodeScalars(col)
		if err != nil {
			t.Fatal(err)
		}
		for i := range enc {
			if enc[i][j] != want[i] {
				t.Fatalf("vector enc[%d][%d] = %v, want %v", i, j, enc[i][j], want[i])
			}
		}
	}
}

func TestEncodeVectorsRagged(t *testing.T) {
	c := mustCoder(t, 2, 2, 9)
	_, err := c.EncodeVectors([][]field.Element{
		{field.One, field.One},
		{field.One},
	})
	if err == nil {
		t.Error("ragged batches accepted")
	}
}

func TestEvalAtNodesRoundTrip(t *testing.T) {
	c := mustCoder(t, 6, 3, 10)
	rng := rand.New(rand.NewSource(11))
	batches := make([]field.Element, c.NumBatches())
	for i := range batches {
		batches[i] = field.Rand(rng)
	}
	got, err := c.EvalAtNodes(batches, c.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	for m := range batches {
		if got[m] != batches[m] {
			t.Fatalf("EvalAtNodes[%d] = %v, want %v", m, got[m], batches[m])
		}
	}
}

func TestPropertyEncodingLinear(t *testing.T) {
	// Encoding is linear in the data: encode(aX + bY) = a·enc(X) + b·enc(Y).
	c := mustCoder(t, 5, 9, 12)
	rng := rand.New(rand.NewSource(13))
	f := func(av, bv uint64) bool {
		a, b := field.New(av), field.New(bv)
		x := make([]field.Element, c.NumBatches())
		y := make([]field.Element, c.NumBatches())
		comb := make([]field.Element, c.NumBatches())
		for i := range x {
			x[i], y[i] = field.Rand(rng), field.Rand(rng)
			comb[i] = a.Mul(x[i]).Add(b.Mul(y[i]))
		}
		ex, _ := c.EncodeScalars(x)
		ey, _ := c.EncodeScalars(y)
		ec, _ := c.EncodeScalars(comb)
		for i := range ec {
			if ec[i] != a.Mul(ex[i]).Add(b.Mul(ey[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// --- RealCoder ---

func TestRealCoderPartitionOfUnity(t *testing.T) {
	nodes := ChebyshevNodes(8, -1, 1)
	points := InteriorPoints(20, -1, 1, nodes)
	c, err := NewRealCoder(nodes, points)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.NumWorkers(); i++ {
		var s float64
		for _, w := range c.WorkerWeights(i) {
			s += w
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("Σ p_m(ρ_%d) = %g, want 1", i, s)
		}
	}
}

func TestRealEncodeMatchesInterpolation(t *testing.T) {
	nodes := ChebyshevNodes(5, -1, 1)
	points := InteriorPoints(7, -1, 1, nodes)
	c, err := NewRealCoder(nodes, points)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	batches := make([]float64, len(nodes))
	for i := range batches {
		batches[i] = rng.NormFloat64()
	}
	h, err := poly.InterpolateReal(nodes, batches)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.EncodeScalars(batches)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		if math.Abs(enc[i]-h.Eval(p)) > 1e-8 {
			t.Fatalf("enc[%d] = %g, want H(ρ)=%g", i, enc[i], h.Eval(p))
		}
	}
}

func TestRedundancyChebyshevBeatsEquispaced(t *testing.T) {
	// The eq. 9 selection rule: Chebyshev nodes keep D small.
	const m, v = 16, 100
	cheb, err := NewRealCoder(ChebyshevNodes(m, -1, 1), InteriorPoints(v, -1, 1, ChebyshevNodes(m, -1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	eqNodes := EquispacedNodes(m, -1, 1)
	equi, err := NewRealCoder(eqNodes, InteriorPoints(v, -0.999, 0.999, eqNodes))
	if err != nil {
		t.Fatal(err)
	}
	dc, de := cheb.Redundancy(), equi.Redundancy()
	if dc >= de {
		t.Errorf("Chebyshev redundancy %g not below equispaced %g", dc, de)
	}
	if dc < 1 {
		t.Errorf("redundancy %g below 1: Σ|p_m| ≥ |Σ p_m| = 1 must hold", dc)
	}
}

func TestRealCoderValidation(t *testing.T) {
	if _, err := NewRealCoder(nil, []float64{1}); err == nil {
		t.Error("empty nodes accepted")
	}
	if _, err := NewRealCoder([]float64{1, 1}, nil); err == nil {
		t.Error("duplicate nodes accepted")
	}
	if _, err := NewRealCoder([]float64{1}, []float64{1}); err == nil {
		t.Error("node/point collision accepted")
	}
}

func TestRealEncodeVectors(t *testing.T) {
	nodes := ChebyshevNodes(3, -1, 1)
	points := InteriorPoints(4, -1, 1, nodes)
	c, err := NewRealCoder(nodes, points)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	enc, err := c.EncodeVectors(batches)
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		w := c.WorkerWeights(i)
		want0 := w[0] + w[2]
		want1 := w[1] + w[2]
		if math.Abs(enc[i][0]-want0) > 1e-12 || math.Abs(enc[i][1]-want1) > 1e-12 {
			t.Fatalf("enc[%d] = %v, want [%g %g]", i, enc[i], want0, want1)
		}
	}
	if _, err := c.EncodeVectors([][]float64{{1}, {2}}); err == nil {
		t.Error("batch count mismatch accepted")
	}
}

func TestChebyshevNodes(t *testing.T) {
	nodes := ChebyshevNodes(4, -2, 2)
	if len(nodes) != 4 {
		t.Fatalf("len = %d", len(nodes))
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i] <= nodes[i-1] {
			t.Errorf("nodes not ascending: %v", nodes)
		}
	}
	for _, n := range nodes {
		if n < -2 || n > 2 {
			t.Errorf("node %g outside [-2,2]", n)
		}
	}
}

func TestEquispacedNodes(t *testing.T) {
	nodes := EquispacedNodes(3, 0, 2)
	want := []float64{0, 1, 2}
	for i := range want {
		if math.Abs(nodes[i]-want[i]) > 1e-12 {
			t.Errorf("nodes = %v, want %v", nodes, want)
		}
	}
	if got := EquispacedNodes(1, 0, 2); got[0] != 1 {
		t.Errorf("single node = %g, want midpoint 1", got[0])
	}
}

func TestInteriorPointsAvoidNodes(t *testing.T) {
	nodes := EquispacedNodes(5, -1, 1)
	pts := InteriorPoints(10, -1, 1, nodes)
	if len(pts) != 10 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		for _, n := range nodes {
			if p == n {
				t.Errorf("point %g collides with node", p)
			}
		}
		if p <= -1 || p >= 1 {
			t.Errorf("point %g outside open interval", p)
		}
	}
}

func BenchmarkEncodeScalarsM16V100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	nodes := field.RandDistinct(rng, 16, nil)
	points := field.RandDistinct(rng, 100, nodes)
	c, err := NewCoder(nodes, points)
	if err != nil {
		b.Fatal(err)
	}
	batches := make([]field.Element, 16)
	for i := range batches {
		batches[i] = field.Rand(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeScalars(batches); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEncodeParallelDeterminism checks every parallelised coder entry
// point produces byte-identical output at workers 1, 2 and 8.
func TestEncodeParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	const m, v, features = 16, 100, 32
	batches := make([][]field.Element, m)
	scalars := make([]field.Element, m)
	for i := range batches {
		scalars[i] = field.Rand(rng)
		batches[i] = make([]field.Element, features)
		for j := range batches[i] {
			batches[i][j] = field.Rand(rng)
		}
	}
	targets := make([]field.Element, v)
	for i := range targets {
		targets[i] = field.Rand(rng)
	}

	base := mustCoder(t, m, v, 92)
	base.SetParallelism(1)
	wantVec, err := base.EncodeVectors(batches)
	if err != nil {
		t.Fatal(err)
	}
	wantScal, err := base.EncodeScalars(scalars)
	if err != nil {
		t.Fatal(err)
	}
	wantNodes, err := base.EvalAtNodes(scalars, targets)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		c := mustCoder(t, m, v, 92)
		c.SetParallelism(workers)
		gotVec, err := c.EncodeVectors(batches)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range wantVec {
			for j := range wantVec[i] {
				if gotVec[i][j] != wantVec[i][j] {
					t.Fatalf("workers=%d: EncodeVectors[%d][%d] differs", workers, i, j)
				}
			}
		}
		gotScal, err := c.EncodeScalars(scalars)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range wantScal {
			if gotScal[i] != wantScal[i] {
				t.Fatalf("workers=%d: EncodeScalars[%d] differs", workers, i)
			}
		}
		gotNodes, err := c.EvalAtNodes(scalars, targets)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range wantNodes {
			if gotNodes[i] != wantNodes[i] {
				t.Fatalf("workers=%d: EvalAtNodes[%d] differs", workers, i)
			}
		}
	}
}

// TestSetParallelismDefault checks workers < 1 resolves to all cores and
// a fresh coder starts sequential.
func TestSetParallelismDefault(t *testing.T) {
	c := mustCoder(t, 4, 8, 93)
	if c.workers != 1 {
		t.Errorf("fresh coder workers = %d, want 1", c.workers)
	}
	c.SetParallelism(0)
	if c.workers < 1 {
		t.Errorf("SetParallelism(0) left workers = %d", c.workers)
	}
}

// --- Cached weight matrices ---

// TestWorkerWeightsCachedMatchRecurrence pins the construction-time weight
// cache against the on-demand recurrence, and checks the returned slice is
// a defensive copy of the cache.
func TestWorkerWeightsCachedMatchRecurrence(t *testing.T) {
	c := mustCoder(t, 8, 20, 94)
	for i := 0; i < c.NumWorkers(); i++ {
		want := c.WeightsAt(c.points[i])
		got := c.WorkerWeights(i)
		for m := range want {
			if got[m] != want[m] {
				t.Fatalf("worker %d weight %d: cached %v, recurrence %v", i, m, got[m], want[m])
			}
		}
		got[0] = got[0].Add(field.One) // must not corrupt the cache
	}
	scalars := make([]field.Element, 8)
	scalars[0] = field.One
	enc, err := c.EncodeScalars(scalars)
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		if want := c.WeightsAt(c.points[i])[0]; enc[i] != want {
			t.Fatalf("worker %d: cache corrupted by WorkerWeights mutation (enc %v, want %v)", i, enc[i], want)
		}
	}
}

// TestRealCoderCachedWeightsAndRedundancy mirrors the cache pinning for
// the float coder: cached rows match the recurrence, the returned slice
// is a copy, and the precomputed redundancy equals the direct maximum.
func TestRealCoderCachedWeightsAndRedundancy(t *testing.T) {
	nodes := ChebyshevNodes(8, -1, 1)
	points := InteriorPoints(20, -1, 1, nodes)
	c, err := NewRealCoder(nodes, points)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range points {
		want := c.WeightsAt(points[i])
		got := c.WorkerWeights(i)
		var s float64
		for m := range want {
			if got[m] != want[m] {
				t.Fatalf("worker %d weight %d: cached %g, recurrence %g", i, m, got[m], want[m])
			}
			s += math.Abs(want[m])
		}
		if s > worst {
			worst = s
		}
		got[0] += 1 // must not corrupt the cache
	}
	if c.Redundancy() != worst {
		t.Fatalf("cached Redundancy = %g, direct maximum %g", c.Redundancy(), worst)
	}
	if c.weights[0][0] != c.WeightsAt(points[0])[0] {
		t.Fatal("cache corrupted by WorkerWeights mutation")
	}
}

func TestEncodeVectorsIntoMatchesEncodeVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	c := mustCoder(t, 6, 14, 72)
	const width = 9
	batches := make([][]field.Element, 6)
	for i := range batches {
		batches[i] = make([]field.Element, width)
		for j := range batches[i] {
			batches[i][j] = field.Rand(rng)
		}
	}
	want, err := c.EncodeVectors(batches)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([][]field.Element, c.NumWorkers())
	for i := range dst {
		dst[i] = make([]field.Element, width)
	}
	// Two passes through the same destination: the second must overwrite
	// the first completely (Reduce writes, never accumulates across calls).
	for pass := 0; pass < 2; pass++ {
		if err := c.EncodeVectorsInto(batches, dst); err != nil {
			t.Fatal(err)
		}
	}
	for i := range want {
		for j := range want[i] {
			if dst[i][j] != want[i][j] {
				t.Fatalf("worker %d lane %d: Into %v, EncodeVectors %v", i, j, dst[i][j], want[i][j])
			}
		}
	}
	// Shape errors must be reported, not panic.
	if err := c.EncodeVectorsInto(batches, dst[:3]); err == nil {
		t.Fatal("short dst accepted")
	}
	dst[0] = dst[0][:width-1]
	if err := c.EncodeVectorsInto(batches, dst); err == nil {
		t.Fatal("ragged dst row accepted")
	}
}

// TestEncodeVectorsAllocs pins the steady-state allocation profile of the
// vector encode: the Into form reuses pooled accumulators and writes only
// caller memory (zero allocs), and the allocating form pays exactly the
// output slab (one flat array plus the row-header slice).
func TestEncodeVectorsAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rng := rand.New(rand.NewSource(73))
	c := mustCoder(t, 8, 20, 74)
	const width = 16
	batches := make([][]field.Element, 8)
	for i := range batches {
		batches[i] = make([]field.Element, width)
		for j := range batches[i] {
			batches[i][j] = field.Rand(rng)
		}
	}
	dst := make([][]field.Element, c.NumWorkers())
	for i := range dst {
		dst[i] = make([]field.Element, width)
	}
	if err := c.EncodeVectorsInto(batches, dst); err != nil { // warm the pool
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if err := c.EncodeVectorsInto(batches, dst); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("EncodeVectorsInto allocates %.1f times per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := c.EncodeVectors(batches); err != nil {
			t.Fatal(err)
		}
	}); allocs > 2 {
		t.Fatalf("EncodeVectors allocates %.1f times per call, want <= 2 (output slab only)", allocs)
	}
}

// BenchmarkEncodeVectorsCached measures the cached-matrix vector encode
// (paper scale M=16, V=100) — the per-call cost after the weight matrix
// and lazy-reduction kernels removed all per-slot weight recomputation.
func BenchmarkEncodeVectorsCached(b *testing.B) {
	rng := rand.New(rand.NewSource(95))
	const m, v, features = 16, 100, 64
	nodes := field.RandDistinct(rng, m, nil)
	points := field.RandDistinct(rng, v, nodes)
	c, err := NewCoder(nodes, points)
	if err != nil {
		b.Fatal(err)
	}
	batches := make([][]field.Element, m)
	for i := range batches {
		batches[i] = make([]field.Element, features)
		for j := range batches[i] {
			batches[i][j] = field.Rand(rng)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeVectors(batches); err != nil {
			b.Fatal(err)
		}
	}
}
