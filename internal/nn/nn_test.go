package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/approx"
)

func testConfig(sizes ...int) Config {
	return Config{LayerSizes: sizes, Activation: approx.SymmetricSigmoid(), Seed: 42}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{LayerSizes: []int{4}, Activation: approx.SymmetricSigmoid()}); err == nil {
		t.Error("single-layer config accepted")
	}
	if _, err := New(Config{LayerSizes: []int{4, 0, 1}, Activation: approx.SymmetricSigmoid()}); err == nil {
		t.Error("zero-width layer accepted")
	}
	if _, err := New(Config{LayerSizes: []int{4, 1}}); err == nil {
		t.Error("missing activation accepted")
	}
}

func TestDeterministicInit(t *testing.T) {
	a, err := New(testConfig(4, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testConfig(4, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed produced different networks")
		}
	}
}

func TestForwardShapeAndRange(t *testing.T) {
	n, err := New(testConfig(4, 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	out, err := n.Forward([]float64{0.1, -0.2, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("output length %d", len(out))
	}
	for _, v := range out {
		if v <= -1 || v >= 1 {
			t.Errorf("sigmoid output %g outside (-1,1)", v)
		}
	}
	if _, err := n.Forward([]float64{1}); err == nil {
		t.Error("wrong input length accepted")
	}
}

func TestEstimateRange(t *testing.T) {
	n, err := New(testConfig(3, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	pi, err := n.Estimate([]float64{0.5, -0.5, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if pi <= 0 || pi >= 1 {
		t.Errorf("π = %g outside (0,1)", pi)
	}
	multi, err := New(testConfig(3, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := multi.Estimate([]float64{1, 2, 3}); err == nil {
		t.Error("multi-output Estimate accepted")
	}
}

func TestLossPositiveAndCalibrated(t *testing.T) {
	n, err := New(testConfig(2, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.8}
	l0, err := n.Loss(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := n.Loss(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l0 <= 0 || l1 <= 0 {
		t.Errorf("losses %g/%g not positive", l0, l1)
	}
	pi, _ := n.Estimate(x)
	// Cross-entropy identity: L(y=1) = -ln π.
	if math.Abs(l1+math.Log(pi)) > 1e-12 {
		t.Errorf("L(1) = %g, want %g", l1, -math.Log(pi))
	}
}

func TestCloneIndependence(t *testing.T) {
	n, err := New(testConfig(3, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	c := n.Clone()
	rng := rand.New(rand.NewSource(1))
	samples := []Sample{{X: []float64{1, 0, -1}, Y: 1}}
	if _, err := c.TrainSGD(samples, 0.1, 5, rng); err != nil {
		t.Fatal(err)
	}
	pn, pc := n.Params(), c.Params()
	same := true
	for i := range pn {
		if pn[i] != pc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("training the clone changed (or matched) the original exactly — clone aliases state")
	}
}

func TestParamsRoundTrip(t *testing.T) {
	a, err := New(testConfig(4, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{LayerSizes: []int{4, 6, 1}, Activation: approx.SymmetricSigmoid(), Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetParams(a.Params()); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3, 0.4}
	ya, _ := a.Forward(x)
	yb, _ := b.Forward(x)
	if ya[0] != yb[0] {
		t.Errorf("outputs differ after parameter transplant: %g vs %g", ya[0], yb[0])
	}
	if err := b.SetParams([]float64{1}); err == nil {
		t.Error("short parameter vector accepted")
	}
	if a.NumParams() != len(a.Params()) {
		t.Errorf("NumParams %d != len(Params) %d", a.NumParams(), len(a.Params()))
	}
}

func TestGradientMatchesFiniteDifferences(t *testing.T) {
	// One SGD step with tiny rho approximates -rho·∇L; verify the implied
	// gradient against central finite differences of the loss.
	n, err := New(testConfig(3, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := Sample{X: []float64{0.5, -0.3, 0.8}, Y: 1}

	base := n.Params()
	const h = 1e-6
	numGrad := make([]float64, len(base))
	for i := range base {
		p := append([]float64(nil), base...)
		p[i] = base[i] + h
		if err := n.SetParams(p); err != nil {
			t.Fatal(err)
		}
		lp, _ := n.Loss(s.X, s.Y)
		p[i] = base[i] - h
		if err := n.SetParams(p); err != nil {
			t.Fatal(err)
		}
		lm, _ := n.Loss(s.X, s.Y)
		numGrad[i] = (lp - lm) / (2 * h)
	}
	if err := n.SetParams(base); err != nil {
		t.Fatal(err)
	}

	const rho = 1e-7
	if _, err := n.TrainSGD([]Sample{s}, rho, 1, nil); err != nil {
		t.Fatal(err)
	}
	after := n.Params()
	for i := range base {
		implied := (base[i] - after[i]) / rho
		if math.Abs(implied-numGrad[i]) > 1e-3*(1+math.Abs(numGrad[i])) {
			t.Fatalf("param %d: backprop grad %g, finite-diff %g", i, implied, numGrad[i])
		}
	}
}

func TestTrainSGDLearnsSeparableTask(t *testing.T) {
	// Labels depend on the sign of the first feature — easily learnable.
	rng := rand.New(rand.NewSource(2))
	var samples []Sample
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		y := 0.0
		if x[0] > 0 {
			y = 1
		}
		samples = append(samples, Sample{X: x, Y: y})
	}
	n, err := New(testConfig(2, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	first, err := n.TrainSGD(samples, 0.5, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	last, err := n.TrainSGD(samples, 0.5, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if last >= first {
		t.Errorf("loss did not improve: %g -> %g", first, last)
	}
	correct := 0
	for _, s := range samples {
		pi, _ := n.Estimate(s.X)
		if (pi > 0.5) == (s.Y == 1) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(samples)); acc < 0.95 {
		t.Errorf("accuracy %g after training, want >= 0.95", acc)
	}
}

func TestTrainWithPolynomialActivation(t *testing.T) {
	// Swap in the paper's least-squares approximated activation and check
	// training still converges (the Approximation-only-FL behaviour).
	act := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(act.F, -2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(testConfig(2, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetActivation(approx.FromPolynomial("ls-3", p)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var samples []Sample
	for i := 0; i < 150; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		y := 0.0
		if x[0]+x[1] > 0 {
			y = 1
		}
		samples = append(samples, Sample{X: x, Y: y})
	}
	loss, err := n.TrainSGD(samples, 0.2, 25, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(loss) || loss > 0.5 {
		t.Errorf("polynomial-activation training loss %g", loss)
	}
	if err := n.SetActivation(approx.Activation{}); err == nil {
		t.Error("empty activation accepted")
	}
}

func TestTrainValidation(t *testing.T) {
	n, err := New(testConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.TrainSGD(nil, 0.1, 1, nil); err == nil {
		t.Error("empty samples accepted")
	}
	s := []Sample{{X: []float64{1, 2}, Y: 1}}
	if _, err := n.TrainSGD(s, 0, 1, nil); err == nil {
		t.Error("zero learning rate accepted")
	}
	if _, err := n.TrainSGD(s, 0.1, 0, nil); err == nil {
		t.Error("zero epochs accepted")
	}
	bad := []Sample{{X: []float64{1}, Y: 1}}
	if _, err := n.TrainSGD(bad, 0.1, 1, nil); err == nil {
		t.Error("wrong sample width accepted")
	}
	multi, err := New(testConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := multi.TrainSGD(s, 0.1, 1, nil); err == nil {
		t.Error("multi-output training accepted")
	}
}

func TestSizes(t *testing.T) {
	n, err := New(testConfig(5, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := n.Sizes()
	if len(s) != 3 || s[0] != 5 || n.InputSize() != 5 || n.OutputSize() != 1 {
		t.Errorf("sizes wrong: %v", s)
	}
	s[0] = 99
	if n.InputSize() == 99 {
		t.Error("Sizes aliases internal state")
	}
}

func BenchmarkTrainSGDEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	var samples []Sample
	for i := 0; i < 100; i++ {
		x := make([]float64, 16)
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		samples = append(samples, Sample{X: x, Y: float64(i % 2)})
	}
	n, err := New(testConfig(16, 8, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.TrainSGD(samples, 0.1, 1, rng); err != nil {
			b.Fatal(err)
		}
	}
}
