package nn

import (
	"encoding/json"
	"fmt"

	"repro/internal/approx"
	"repro/internal/poly"
)

// Snapshot is a serialisable image of a network: architecture, flat
// parameters, and the activation (as polynomial coefficients, or empty
// for the exact symmetric sigmoid). It marshals to JSON with
// encoding/json, giving models a stable wire/disk format.
type Snapshot struct {
	// LayerSizes is the architecture, input first.
	LayerSizes []int `json:"layer_sizes"`
	// Params is the flat parameter vector (Params layout).
	Params []float64 `json:"params"`
	// ActivationPoly holds polynomial activation coefficients; empty
	// means the exact symmetric sigmoid of paper eq. 10.
	ActivationPoly []float64 `json:"activation_poly,omitempty"`
	// WeightCap preserves the projected-SGD bound (0 = off).
	WeightCap float64 `json:"weight_cap,omitempty"`
}

// Snapshot captures the network's current state.
func (n *Network) Snapshot() Snapshot {
	s := Snapshot{
		LayerSizes: n.Sizes(),
		Params:     n.Params(),
		WeightCap:  n.weightCap,
	}
	if p := n.act.Poly; p != nil {
		s.ActivationPoly = append([]float64(nil), p...)
	}
	return s
}

// FromSnapshot reconstructs a network. The activation is rebuilt from the
// stored polynomial, or the exact symmetric sigmoid when none is stored.
func FromSnapshot(s Snapshot) (*Network, error) {
	var act approx.Activation
	if len(s.ActivationPoly) > 0 {
		act = approx.FromPolynomial("snapshot-poly", poly.NewReal(s.ActivationPoly...))
	} else {
		act = approx.SymmetricSigmoid()
	}
	n, err := New(Config{LayerSizes: s.LayerSizes, Activation: act})
	if err != nil {
		return nil, fmt.Errorf("nn: snapshot: %w", err)
	}
	if err := n.SetParams(s.Params); err != nil {
		return nil, fmt.Errorf("nn: snapshot: %w", err)
	}
	if err := n.SetWeightCap(s.WeightCap); err != nil {
		return nil, fmt.Errorf("nn: snapshot: %w", err)
	}
	return n, nil
}

// MarshalJSON lets a Network serialise directly.
func (n *Network) MarshalJSON() ([]byte, error) {
	return json.Marshal(n.Snapshot())
}

// UnmarshalNetworkJSON parses a network previously marshalled with
// MarshalJSON (a method form is impossible: a Network must be constructed,
// not zero-valued).
func UnmarshalNetworkJSON(data []byte) (*Network, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("nn: unmarshal snapshot: %w", err)
	}
	return FromSnapshot(s)
}
