package nn

import (
	"encoding/json"
	"testing"

	"repro/internal/approx"
	"repro/internal/poly"
)

func TestSnapshotRoundTripExact(t *testing.T) {
	n, err := New(testConfig(5, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromSnapshot(n.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.2, 0.3, 0.4, -0.5}
	a, _ := n.Forward(x)
	b, _ := got.Forward(x)
	if a[0] != b[0] {
		t.Errorf("round-trip changed output: %g vs %g", a[0], b[0])
	}
	if got.Activation().Poly != nil {
		t.Error("exact activation became polynomial")
	}
}

func TestSnapshotRoundTripPolynomial(t *testing.T) {
	p := poly.NewReal(0, 0.5, 0, -0.04)
	n, err := New(Config{
		LayerSizes: []int{4, 1},
		Activation: approx.FromPolynomial("p", p),
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetWeightCap(7); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalNetworkJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, -1, 0.5, 0.25}
	a, _ := n.Forward(x)
	b, _ := got.Forward(x)
	if a[0] != b[0] {
		t.Errorf("JSON round-trip changed output: %g vs %g", a[0], b[0])
	}
	if got.WeightCap() != 7 {
		t.Errorf("weight cap lost: %g", got.WeightCap())
	}
	if got.Activation().Poly == nil {
		t.Error("polynomial activation lost")
	}
}

func TestSnapshotValidation(t *testing.T) {
	if _, err := FromSnapshot(Snapshot{LayerSizes: []int{4}}); err == nil {
		t.Error("single-layer snapshot accepted")
	}
	if _, err := FromSnapshot(Snapshot{LayerSizes: []int{4, 1}, Params: []float64{1}}); err == nil {
		t.Error("short params accepted")
	}
	if _, err := UnmarshalNetworkJSON([]byte("not json")); err == nil {
		t.Error("garbage JSON accepted")
	}
}
