// Package nn implements the multi-layer neural network the paper's
// traffic-slowness application trains (paper §V).
//
// The network is a fully-connected perceptron whose hidden and output
// neurons use the symmetric sigmoid F(x) = (1-e^(-x))/(1+e^(-x)) of
// eq. 10, or — on the L-CoFL path — a polynomial replacement produced by
// package approx. The scalar output f ∈ (-1, 1) is mapped to the
// estimation result π = (1 + f)/2 and trained with the cross-entropy loss
// of eq. 11 by stochastic gradient descent (eq. 1).
//
// Networks are deterministic given a seed, cloneable, and expose their
// parameters as a flat vector so the plain-FL baseline can FedAvg them
// (eq. 2).
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/approx"
	"repro/internal/linalg"
)

// Config describes a network. LayerSizes runs input → hidden… → output;
// the paper's application uses one scalar output.
type Config struct {
	// LayerSizes lists the width of every layer, input first.
	LayerSizes []int
	// Activation applies to every non-input layer.
	Activation approx.Activation
	// Seed drives the deterministic weight initialisation.
	Seed int64
}

// Network is a fully-connected multi-layer perceptron.
type Network struct {
	sizes   []int
	weights []*linalg.Matrix // weights[l]: sizes[l+1] × sizes[l]
	biases  [][]float64      // biases[l]: sizes[l+1]
	act     approx.Activation
	// weightCap, when positive, bounds the L1 norm of the flat parameter
	// vector: every training step projects back onto the L1 ball.
	// Polynomial activations are only faithful on a bounded
	// pre-activation interval (non-monotone beyond it), so with inputs in
	// [-1, 1] capping ‖params‖₁ keeps |w·x + b| inside that interval —
	// projected SGD, the standard constrained-training device.
	weightCap float64
}

// New builds a network with Xavier-style uniform initialisation.
func New(cfg Config) (*Network, error) {
	if len(cfg.LayerSizes) < 2 {
		return nil, fmt.Errorf("nn: need at least input and output layers, got %v", cfg.LayerSizes)
	}
	for i, s := range cfg.LayerSizes {
		if s < 1 {
			return nil, fmt.Errorf("nn: layer %d has size %d", i, s)
		}
	}
	if cfg.Activation.F == nil || cfg.Activation.DF == nil {
		return nil, fmt.Errorf("nn: activation with F and DF is required")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &Network{
		sizes: append([]int(nil), cfg.LayerSizes...),
		act:   cfg.Activation,
	}
	for l := 0; l+1 < len(cfg.LayerSizes); l++ {
		in, out := cfg.LayerSizes[l], cfg.LayerSizes[l+1]
		w := linalg.NewMatrix(out, in)
		bound := math.Sqrt(6.0 / float64(in+out))
		for i := 0; i < out; i++ {
			for j := 0; j < in; j++ {
				w.Set(i, j, (2*rng.Float64()-1)*bound)
			}
		}
		n.weights = append(n.weights, w)
		n.biases = append(n.biases, make([]float64, out))
	}
	return n, nil
}

// InputSize returns the expected feature-vector length.
func (n *Network) InputSize() int { return n.sizes[0] }

// OutputSize returns the output-vector length.
func (n *Network) OutputSize() int { return n.sizes[len(n.sizes)-1] }

// Activation returns the network's current activation.
func (n *Network) Activation() approx.Activation { return n.act }

// SetActivation swaps the activation in place. This is the approximation
// hand-off of paper §IV Step 2: vehicles replace the symmetric sigmoid in
// every neuron by its polynomial fit once per FL session.
func (n *Network) SetActivation(a approx.Activation) error {
	if a.F == nil || a.DF == nil {
		return fmt.Errorf("nn: activation with F and DF is required")
	}
	n.act = a
	return nil
}

// SetWeightCap installs (or removes, with 0) the L1 projection bound.
func (n *Network) SetWeightCap(cap float64) error {
	if cap < 0 {
		return fmt.Errorf("nn: weight cap %g must be >= 0", cap)
	}
	n.weightCap = cap
	return nil
}

// WeightCap returns the current L1 projection bound (0 = off).
func (n *Network) WeightCap() float64 { return n.weightCap }

// ProjectWeights applies the L1 projection immediately — used after
// external parameter updates (the fusion centre's closed-form distill).
func (n *Network) ProjectWeights() { n.projectWeightCap() }

// projectWeightCap scales the parameters back onto the L1 ball when the
// cap is active.
func (n *Network) projectWeightCap() {
	if n.weightCap <= 0 {
		return
	}
	params := n.Params()
	var l1 float64
	for _, p := range params {
		l1 += math.Abs(p)
	}
	if l1 <= n.weightCap {
		return
	}
	scale := n.weightCap / l1
	for i := range params {
		params[i] *= scale
	}
	// SetParams cannot fail here: the layout is the network's own.
	_ = n.SetParams(params)
}

// Clone returns an independent deep copy sharing no state.
func (n *Network) Clone() *Network {
	out := &Network{
		sizes:     append([]int(nil), n.sizes...),
		act:       n.act,
		weightCap: n.weightCap,
	}
	for l := range n.weights {
		out.weights = append(out.weights, n.weights[l].Clone())
		out.biases = append(out.biases, linalg.Clone(n.biases[l]))
	}
	return out
}

// Forward runs the network on one feature vector and returns the output
// activations.
func (n *Network) Forward(x []float64) ([]float64, error) {
	if len(x) != n.InputSize() {
		return nil, fmt.Errorf("nn: input length %d, want %d", len(x), n.InputSize())
	}
	a := linalg.Clone(x)
	for l := range n.weights {
		z, err := n.weights[l].MulVec(a)
		if err != nil {
			return nil, err
		}
		linalg.VecAddInPlace(z, n.biases[l])
		for i := range z {
			z[i] = n.act.F(z[i])
		}
		a = z
	}
	return a, nil
}

// Estimate returns the paper's estimation result π = (1 + f(x))/2 for a
// single-output network — the traffic-slowness probability. With the
// exact activation π ∈ (0, 1); polynomial activations can leave that
// range (use EstimateClamped where a probability is required).
func (n *Network) Estimate(x []float64) (float64, error) {
	if n.OutputSize() != 1 {
		return 0, fmt.Errorf("nn: Estimate requires a single output, network has %d", n.OutputSize())
	}
	out, err := n.Forward(x)
	if err != nil {
		return 0, err
	}
	return (1 + out[0]) / 2, nil
}

// EstimateClamped is Estimate restricted to [0, 1] — the estimation
// result as the application reports it. Polynomial activations are
// unbounded outside the approximation domain, so every interface that
// treats the estimate as a probability (uploads, aggregation, metrics)
// must use the clamped form; otherwise a single saturated model can
// dominate an average with a huge spurious value.
func (n *Network) EstimateClamped(x []float64) (float64, error) {
	pi, err := n.Estimate(x)
	if err != nil {
		return 0, err
	}
	if pi < 0 {
		return 0, nil
	}
	if pi > 1 {
		return 1, nil
	}
	return pi, nil
}

// clampProb keeps π inside (ε, 1-ε) so the cross-entropy loss and its
// gradient stay finite; polynomial activations can leave (-1, 1).
func clampProb(p float64) float64 {
	const eps = 1e-9
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// gradClip bounds the output-layer delta. With the exact sigmoid the
// saturating derivative keeps deltas small automatically, but polynomial
// activations have non-vanishing derivatives everywhere: a sample whose
// clamped π opposes its label would otherwise produce a ~1/ε gradient and
// detonate the weights in one SGD step.
const gradClip = 10.0

func clipDelta(d float64) float64 {
	if d > gradClip {
		return gradClip
	}
	if d < -gradClip {
		return -gradClip
	}
	return d
}

// Loss returns the cross-entropy of eq. 11 for one sample with binary
// label y ∈ {0, 1}: L = -(y·ln π + (1-y)·ln(1-π)).
func (n *Network) Loss(x []float64, y float64) (float64, error) {
	pi, err := n.Estimate(x)
	if err != nil {
		return 0, err
	}
	pi = clampProb(pi)
	return -(y*math.Log(pi) + (1-y)*math.Log(1-pi)), nil
}

// Sample is one labelled training tuple (x_k, y_k) from a vehicle's local
// dataset D_i.
type Sample struct {
	// X is the normalised feature vector.
	X []float64
	// Y is the binary label (1 = slow traffic).
	Y float64
}

// TrainSGD performs epochs of per-sample stochastic gradient descent
// (paper eq. 1) over the samples with learning rate rho, shuffling with
// rng each epoch, and returns the mean loss of the final epoch.
func (n *Network) TrainSGD(samples []Sample, rho float64, epochs int, rng *rand.Rand) (float64, error) {
	return n.TrainSGDProximal(samples, rho, epochs, rng, 0, nil)
}

// TrainSGDProximal is TrainSGD with a FedProx-style proximal term: each
// sample step additionally pulls the parameters toward the anchor with
// strength mu (loss + μ/2·‖w − anchor‖²). The L-CoFL pipeline uses it to
// bound the heterogeneity of honest vehicles around the broadcast shared
// model, which is what separates honest uploads from malicious ones at the
// decoder. mu = 0 (with a nil anchor) disables the term.
func (n *Network) TrainSGDProximal(samples []Sample, rho float64, epochs int, rng *rand.Rand, mu float64, anchor []float64) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("nn: no training samples")
	}
	if rho <= 0 {
		return 0, fmt.Errorf("nn: learning rate %g must be positive", rho)
	}
	if epochs < 1 {
		return 0, fmt.Errorf("nn: epochs %d must be >= 1", epochs)
	}
	if n.OutputSize() != 1 {
		// The paper's application trains a scalar estimation head
		// (eq. 11); vector targets are out of scope.
		return 0, fmt.Errorf("nn: SGD training requires a single output, network has %d", n.OutputSize())
	}
	if mu < 0 {
		return 0, fmt.Errorf("nn: proximal strength %g must be >= 0", mu)
	}
	if mu > 0 && len(anchor) != n.NumParams() {
		return 0, fmt.Errorf("nn: anchor length %d, want %d", len(anchor), n.NumParams())
	}
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	var lastLoss float64
	for e := 0; e < epochs; e++ {
		if rng != nil {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		var total float64
		for _, idx := range order {
			loss, err := n.step(samples[idx], rho)
			if err != nil {
				return 0, err
			}
			total += loss
			if mu > 0 {
				// Proximal pull: w ← w − ρ·μ·(w − anchor).
				params := n.Params()
				for i := range params {
					params[i] -= rho * mu * (params[i] - anchor[i])
				}
				if err := n.SetParams(params); err != nil {
					return 0, err
				}
			}
			n.projectWeightCap()
		}
		lastLoss = total / float64(len(samples))
	}
	return lastLoss, nil
}

// step backpropagates one sample and applies the gradient in place.
func (n *Network) step(s Sample, rho float64) (float64, error) {
	if len(s.X) != n.InputSize() {
		return 0, fmt.Errorf("nn: sample length %d, want %d", len(s.X), n.InputSize())
	}
	L := len(n.weights)
	// Forward pass caching pre-activations z and activations a.
	as := make([][]float64, L+1)
	zs := make([][]float64, L)
	as[0] = linalg.Clone(s.X)
	for l := 0; l < L; l++ {
		z, err := n.weights[l].MulVec(as[l])
		if err != nil {
			return 0, err
		}
		linalg.VecAddInPlace(z, n.biases[l])
		zs[l] = z
		a := make([]float64, len(z))
		for i := range z {
			a[i] = n.act.F(z[i])
		}
		as[l+1] = a
	}

	// Loss and output-layer delta.
	// π = (1+f)/2, L = -(y ln π + (1-y) ln(1-π)),
	// dL/df = (π - y) / (2π(1-π)) · ... computing directly:
	// dL/dπ = -(y/π) + (1-y)/(1-π); dπ/df = 1/2.
	out := as[L][0]
	pi := clampProb((1 + out) / 2)
	loss := -(s.Y*math.Log(pi) + (1-s.Y)*math.Log(1-pi))
	dLdPi := -(s.Y / pi) + (1-s.Y)/(1-pi)
	delta := []float64{clipDelta(dLdPi * 0.5 * n.act.DF(zs[L-1][0]))}

	// Backward pass: propagate each layer's delta with the pre-update
	// weights, then apply the gradient step.
	for l := L - 1; l >= 0; l-- {
		var next []float64
		if l > 0 {
			next = make([]float64, len(as[l]))
			for j := range next {
				var s float64
				for i := range delta {
					s += n.weights[l].At(i, j) * delta[i]
				}
				next[j] = s * n.act.DF(zs[l-1][j])
			}
		}
		prev := as[l]
		for i := range delta {
			for j := range prev {
				n.weights[l].Set(i, j, n.weights[l].At(i, j)-rho*delta[i]*prev[j])
			}
			n.biases[l][i] -= rho * delta[i]
		}
		delta = next
	}
	return loss, nil
}

// Gradient computes the loss and the flat gradient vector (Params layout)
// of the cross-entropy loss for one sample, without updating the network.
func (n *Network) Gradient(s Sample) (float64, []float64, error) {
	if len(s.X) != n.InputSize() {
		return 0, nil, fmt.Errorf("nn: sample length %d, want %d", len(s.X), n.InputSize())
	}
	if n.OutputSize() != 1 {
		return 0, nil, fmt.Errorf("nn: Gradient requires a single output, network has %d", n.OutputSize())
	}
	L := len(n.weights)
	as := make([][]float64, L+1)
	zs := make([][]float64, L)
	as[0] = linalg.Clone(s.X)
	for l := 0; l < L; l++ {
		z, err := n.weights[l].MulVec(as[l])
		if err != nil {
			return 0, nil, err
		}
		linalg.VecAddInPlace(z, n.biases[l])
		zs[l] = z
		a := make([]float64, len(z))
		for i := range z {
			a[i] = n.act.F(z[i])
		}
		as[l+1] = a
	}
	out := as[L][0]
	pi := clampProb((1 + out) / 2)
	loss := -(s.Y*math.Log(pi) + (1-s.Y)*math.Log(1-pi))
	dLdPi := -(s.Y / pi) + (1-s.Y)/(1-pi)
	delta := []float64{clipDelta(dLdPi * 0.5 * n.act.DF(zs[L-1][0]))}

	// Per-layer gradients, assembled back-to-front then flattened in
	// Params order (front-to-back).
	wg := make([][]float64, L) // flattened weight grads per layer
	bg := make([][]float64, L)
	for l := L - 1; l >= 0; l-- {
		prev := as[l]
		wgl := make([]float64, len(delta)*len(prev))
		for i := range delta {
			for j := range prev {
				wgl[i*len(prev)+j] = delta[i] * prev[j]
			}
		}
		wg[l] = wgl
		bg[l] = linalg.Clone(delta)
		if l == 0 {
			break
		}
		next := make([]float64, len(as[l]))
		for j := range next {
			var sum float64
			for i := range delta {
				sum += n.weights[l].At(i, j) * delta[i]
			}
			next[j] = sum * n.act.DF(zs[l-1][j])
		}
		delta = next
	}
	flat := make([]float64, 0, n.NumParams())
	for l := 0; l < L; l++ {
		flat = append(flat, wg[l]...)
		flat = append(flat, bg[l]...)
	}
	return loss, flat, nil
}

// TrainFullBatch performs epochs of deterministic full-batch gradient
// descent: each epoch applies the mean gradient over all samples once.
// The fusion centre's distillation update uses this (package fl) because
// it is reproducible and free of SGD shuffle noise. Returns the mean loss
// of the final epoch.
func (n *Network) TrainFullBatch(samples []Sample, rate float64, epochs int) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("nn: no training samples")
	}
	if rate <= 0 {
		return 0, fmt.Errorf("nn: learning rate %g must be positive", rate)
	}
	if epochs < 1 {
		return 0, fmt.Errorf("nn: epochs %d must be >= 1", epochs)
	}
	var lastLoss float64
	acc := make([]float64, n.NumParams())
	for e := 0; e < epochs; e++ {
		for i := range acc {
			acc[i] = 0
		}
		var total float64
		for _, s := range samples {
			loss, g, err := n.Gradient(s)
			if err != nil {
				return 0, err
			}
			total += loss
			linalg.VecAddInPlace(acc, g)
		}
		params := n.Params()
		linalg.AXPYInPlace(params, -rate/float64(len(samples)), acc)
		if err := n.SetParams(params); err != nil {
			return 0, err
		}
		n.projectWeightCap()
		lastLoss = total / float64(len(samples))
	}
	return lastLoss, nil
}

// Params flattens all weights and biases into one vector, layer by layer
// (weights row-major, then biases). SetParams accepts the same layout.
func (n *Network) Params() []float64 {
	var out []float64
	for l := range n.weights {
		w := n.weights[l]
		for i := 0; i < w.Rows(); i++ {
			out = append(out, w.Row(i)...)
		}
		out = append(out, n.biases[l]...)
	}
	return out
}

// NumParams returns the flat parameter count.
func (n *Network) NumParams() int {
	total := 0
	for l := range n.weights {
		total += n.weights[l].Rows()*n.weights[l].Cols() + len(n.biases[l])
	}
	return total
}

// SetParams installs a flat parameter vector produced by Params.
func (n *Network) SetParams(p []float64) error {
	if len(p) != n.NumParams() {
		return fmt.Errorf("nn: parameter vector length %d, want %d", len(p), n.NumParams())
	}
	k := 0
	for l := range n.weights {
		w := n.weights[l]
		for i := 0; i < w.Rows(); i++ {
			for j := 0; j < w.Cols(); j++ {
				w.Set(i, j, p[k])
				k++
			}
		}
		for i := range n.biases[l] {
			n.biases[l][i] = p[k]
			k++
		}
	}
	return nil
}

// Sizes returns a copy of the layer sizes.
func (n *Network) Sizes() []int { return append([]int(nil), n.sizes...) }
