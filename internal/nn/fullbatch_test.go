package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/approx"
	"repro/internal/poly"
)

func TestGradientMatchesFiniteDifferencesDirect(t *testing.T) {
	n, err := New(testConfig(3, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := Sample{X: []float64{0.4, -0.7, 0.2}, Y: 0}
	loss, grad, err := n.Gradient(s)
	if err != nil {
		t.Fatal(err)
	}
	wantLoss, err := n.Loss(s.X, s.Y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-wantLoss) > 1e-12 {
		t.Errorf("Gradient loss %g != Loss %g", loss, wantLoss)
	}
	base := n.Params()
	const h = 1e-6
	for i := range base {
		p := append([]float64(nil), base...)
		p[i] = base[i] + h
		if err := n.SetParams(p); err != nil {
			t.Fatal(err)
		}
		lp, _ := n.Loss(s.X, s.Y)
		p[i] = base[i] - h
		if err := n.SetParams(p); err != nil {
			t.Fatal(err)
		}
		lm, _ := n.Loss(s.X, s.Y)
		if err := n.SetParams(base); err != nil {
			t.Fatal(err)
		}
		want := (lp - lm) / (2 * h)
		if math.Abs(grad[i]-want) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("grad[%d] = %g, finite diff %g", i, grad[i], want)
		}
	}
}

func TestGradientValidation(t *testing.T) {
	n, err := New(testConfig(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.Gradient(Sample{X: []float64{1}, Y: 0}); err == nil {
		t.Error("short sample accepted")
	}
	multi, err := New(testConfig(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := multi.Gradient(Sample{X: []float64{1, 2, 3}, Y: 0}); err == nil {
		t.Error("multi-output gradient accepted")
	}
}

func TestTrainFullBatchConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var samples []Sample
	for i := 0; i < 150; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		y := 0.0
		if x[0]-x[1] > 0 {
			y = 1
		}
		samples = append(samples, Sample{X: x, Y: y})
	}
	n, err := New(testConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	first, err := n.TrainFullBatch(samples, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	last, err := n.TrainFullBatch(samples, 1.0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if last >= first {
		t.Errorf("full-batch loss did not improve: %g -> %g", first, last)
	}
	correct := 0
	for _, s := range samples {
		pi, _ := n.Estimate(s.X)
		if (pi > 0.5) == (s.Y == 1) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(samples)); acc < 0.95 {
		t.Errorf("full-batch accuracy %g", acc)
	}
}

func TestTrainFullBatchValidation(t *testing.T) {
	n, err := New(testConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.TrainFullBatch(nil, 0.1, 1); err == nil {
		t.Error("empty samples accepted")
	}
	s := []Sample{{X: []float64{1, 2}, Y: 1}}
	if _, err := n.TrainFullBatch(s, 0, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := n.TrainFullBatch(s, 0.1, 0); err == nil {
		t.Error("zero epochs accepted")
	}
}

func TestEstimateClamped(t *testing.T) {
	// A linear "activation" lets the raw estimate leave [0, 1].
	n, err := New(Config{
		LayerSizes: []int{1, 1},
		Activation: approx.FromPolynomial("id", poly.NewReal(0, 1)),
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetParams([]float64{10, 0}); err != nil { // f(x) = 10x
		t.Fatal(err)
	}
	raw, err := n.Estimate([]float64{1}) // π = (1+10)/2 = 5.5
	if err != nil {
		t.Fatal(err)
	}
	if raw != 5.5 {
		t.Fatalf("raw estimate %g", raw)
	}
	cl, err := n.EstimateClamped([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if cl != 1 {
		t.Errorf("clamped high = %g", cl)
	}
	cl, err = n.EstimateClamped([]float64{-1})
	if err != nil {
		t.Fatal(err)
	}
	if cl != 0 {
		t.Errorf("clamped low = %g", cl)
	}
	cl, err = n.EstimateClamped([]float64{0.02}) // π = 0.6
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cl-0.6) > 1e-12 {
		t.Errorf("in-range estimate altered: %g", cl)
	}
}

func TestWeightCapProjection(t *testing.T) {
	n, err := New(testConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetWeightCap(-1); err == nil {
		t.Error("negative cap accepted")
	}
	if err := n.SetWeightCap(1.5); err != nil {
		t.Fatal(err)
	}
	if n.WeightCap() != 1.5 {
		t.Errorf("WeightCap = %g", n.WeightCap())
	}
	if err := n.SetParams([]float64{3, -4, 1}); err != nil { // L1 = 8
		t.Fatal(err)
	}
	n.ProjectWeights()
	params := n.Params()
	var l1 float64
	for _, p := range params {
		l1 += math.Abs(p)
	}
	if math.Abs(l1-1.5) > 1e-12 {
		t.Errorf("projected L1 = %g, want 1.5", l1)
	}
	// Direction preserved.
	if params[0] <= 0 || params[1] >= 0 {
		t.Errorf("projection flipped signs: %v", params)
	}
	// Inside the ball: no change.
	if err := n.SetParams([]float64{0.3, 0.2, 0.1}); err != nil {
		t.Fatal(err)
	}
	n.ProjectWeights()
	got := n.Params()
	if got[0] != 0.3 || got[1] != 0.2 || got[2] != 0.1 {
		t.Errorf("in-ball params changed: %v", got)
	}
	// Clone carries the cap.
	if c := n.Clone(); c.WeightCap() != 1.5 {
		t.Errorf("clone cap = %g", c.WeightCap())
	}
	// Training respects the cap.
	samples := []Sample{{X: []float64{1, 1}, Y: 1}, {X: []float64{-1, -1}, Y: 0}}
	if _, err := n.TrainSGD(samples, 0.5, 50, nil); err != nil {
		t.Fatal(err)
	}
	l1 = 0
	for _, p := range n.Params() {
		l1 += math.Abs(p)
	}
	if l1 > 1.5+1e-9 {
		t.Errorf("SGD escaped the cap: L1 = %g", l1)
	}
}
