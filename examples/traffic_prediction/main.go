// Traffic prediction: the paper's §V application end to end.
//
// 60 honest vehicles collaboratively train the shared traffic-slowness
// model with L-CoFL: the activation is replaced by its least-squares
// polynomial (paper §IV Step 2, §V), every round runs the coded
// verification channel plus verified estimation aggregation, and the
// fusion centre distils the aggregate into the shared model.
//
// Run: go run ./examples/traffic_prediction
package main

import (
	"fmt"
	"log"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/traffic"
)

func main() {
	const vehicles = 60

	// Synthetic São Paulo-style data (see DESIGN.md §2): 16 features per
	// half-hour slot, binary slow/fast label.
	ds, err := traffic.Generate(traffic.GenConfig{Rows: 3000, Seed: 10})
	if err != nil {
		log.Fatal(err)
	}
	train, test, err := ds.Split(0.8, 11)
	if err != nil {
		log.Fatal(err)
	}
	refDS, err := traffic.Generate(traffic.GenConfig{Rows: 16 * 8, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := train.PartitionIID(vehicles, 13)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: approximate the activation (paper eq. 10) by least squares
	// on 21 uniform points of [-2, 2] — the paper's §VI setting.
	exact := approx.SymmetricSigmoid()
	poly, report, err := approx.Evaluate(approx.LeastSquares{SamplePoints: 21}, exact.F, -2, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("activation approximation: %s degree %d, sup-norm error %.4f on [%g, %g]\n",
		report.Method, report.Degree, report.MaxError, report.Lo, report.Hi)

	sys, err := fl.NewSystem(fl.Config{
		InputSize:     traffic.NumFeatures,
		LocalEpochs:   5,
		LocalRate:     0.2,
		DistillEpochs: 30,
		DistillRate:   0.2,
		ServerStep:    0.5,
		Seed:          14,
	}, parts, refDS.Features(), approx.FromPolynomial("ls-1", poly))
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := core.NewScheme(refDS.Features(), core.SchemeConfig{
		NumVehicles: vehicles,
		NumBatches:  16,
		Degree:      1,
		Seed:        15,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("L-CoFL: V=%d, M=16, K=%d, E-security budget %d vehicles\n\n",
		vehicles, scheme.RecoverThreshold(), scheme.MaxMalicious())

	for r := 1; r <= 15; r++ {
		stats, err := sys.RunRound(scheme, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		acc, err := sys.Accuracy(test.Samples)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %2d: local loss %.3f, distill loss %.3f, test accuracy %.3f\n",
			r, stats.MeanLocalLoss, stats.DistillLoss, acc)
	}

	mean, err := sys.MeanEstimate(test.Features())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal mean traffic-slowness estimation over the test window: %.3f\n", mean)
}
