// Malicious resilience: the paper's Fig. 4 scenario as library code.
//
// Two identical FL deployments train side by side with 30% of the fleet
// lying about every upload. The plain deployment averages the lies into
// its model; the L-CoFL deployment identifies the liars on the coded
// verification channel (eq. 6) and excludes them, so its model tracks the
// honest ideal.
//
// Run: go run ./examples/malicious_resilience
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/traffic"
)

func main() {
	const (
		vehicles      = 100
		maliciousFrac = 0.3
		rounds        = 12
	)

	ds, err := traffic.Generate(traffic.GenConfig{Rows: 3000, Seed: 20})
	if err != nil {
		log.Fatal(err)
	}
	train, test, err := ds.Split(0.8, 21)
	if err != nil {
		log.Fatal(err)
	}
	refDS, err := traffic.Generate(traffic.GenConfig{Rows: 16 * 8, Seed: 22})
	if err != nil {
		log.Fatal(err)
	}
	refX := refDS.Features()
	parts, err := train.PartitionIID(vehicles, 23)
	if err != nil {
		log.Fatal(err)
	}
	exact := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(exact.F, -2, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := fl.Config{
		InputSize:     traffic.NumFeatures,
		LocalEpochs:   5,
		LocalRate:     0.2,
		DistillEpochs: 30,
		DistillRate:   0.2,
		ServerStep:    0.5,
		Seed:          24,
	}
	newSystem := func() *fl.System {
		sys, err := fl.NewSystem(cfg, parts, refX, approx.FromPolynomial("ls-1", p))
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}
	plainSys, codedSys, idealSys := newSystem(), newSystem(), newSystem()

	plainScheme, err := fl.NewPlainScheme(refX)
	if err != nil {
		log.Fatal(err)
	}
	idealScheme, err := fl.NewPlainScheme(refX)
	if err != nil {
		log.Fatal(err)
	}
	codedScheme, err := core.NewScheme(refX, core.SchemeConfig{
		NumVehicles: vehicles, NumBatches: 16, Degree: 1, Seed: 25,
	})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := adversary.NewPlan(vehicles, maliciousFrac, adversary.ConstantLie{Value: 5}, 26)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d of %d vehicles lie every round (budget: %d)\n\n",
		plan.Count(), vehicles, codedScheme.MaxMalicious())
	fmt.Println("round   ideal   plain(attacked)   l-cofl(attacked)   flagged")

	for r := 1; r <= rounds; r++ {
		if _, err := idealSys.RunRound(idealScheme, nil, nil); err != nil {
			log.Fatal(err)
		}
		if _, err := plainSys.RunRound(plainScheme, plan, nil); err != nil {
			log.Fatal(err)
		}
		if _, err := codedSys.RunRound(codedScheme, plan, nil); err != nil {
			log.Fatal(err)
		}
		ia, err := idealSys.Accuracy(test.Samples)
		if err != nil {
			log.Fatal(err)
		}
		pa, err := plainSys.Accuracy(test.Samples)
		if err != nil {
			log.Fatal(err)
		}
		ca, err := codedSys.Accuracy(test.Samples)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d   %.3f   %.3f             %.3f              %d\n",
			r, ia, pa, ca, len(codedScheme.SuspectedMalicious()))
	}
	fmt.Println("\nplain FL absorbs the lies into its shared model; L-CoFL's")
	fmt.Println("Reed-Solomon verification removes them (paper Fig. 4).")
}
