// Quickstart: Lagrange coded computing in five minutes.
//
// A fusion centre wants V=20 vehicles to evaluate a small polynomial model
// on M=4 private data batches. It Lagrange-encodes the batches (paper
// eqs. 3–4), hands each vehicle one encoded share, and lets 5 vehicles lie
// about their result. The Reed–Solomon decoder recovers every batch output
// bit-exactly and names the liars — eq. 6's E-security in action.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/field"
)

func main() {
	const (
		vehicles = 20
		batches  = 4
		degree   = 2
	)
	inf, err := core.NewInference(core.InferenceConfig{
		NumVehicles: vehicles,
		NumBatches:  batches,
		FracBits:    9,
		Seed:        1,
	}, degree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recover threshold K = %d, tolerating up to E = %d erroneous vehicles (eq. 6)\n\n",
		inf.RecoverThreshold(), inf.MaxMalicious())

	// A toy single-layer model: estimation = act(w·x + b) with the
	// paper's activation approximated by a degree-2 polynomial.
	exact := approx.SymmetricSigmoid()
	act, err := approx.LeastSquares{SamplePoints: 21}.Fit(exact.F, -2, 2, degree)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	w := make([]float64, 8)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.4
	}
	b := 0.1

	// Four private data batches (one representative feature vector each).
	data := make([][]float64, batches)
	for m := range data {
		data[m] = make([]float64, len(w))
		for f := range data[m] {
			data[m][f] = rng.Float64()*2 - 1
		}
	}

	// Five vehicles (25%) report garbage instead of computing.
	corrupt := map[int]field.Element{}
	for _, id := range rng.Perm(vehicles)[:5] {
		corrupt[id] = field.Rand(rng)
	}
	fmt.Printf("malicious vehicles (hidden from the decoder): %v\n\n", keys(corrupt))

	res, err := inf.Run(w, b, act, data, corrupt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decoded batch estimations vs direct plaintext computation:")
	for m, got := range res.BatchOutputs {
		want, err := inf.PlaintextModel(w, b, act, data[m])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  batch %d: decoded %+.6f   plaintext %+.6f   bit-exact: %v\n",
			m, got, want, got == want)
	}
	fmt.Printf("\ndecoder identified erroneous vehicles: %v\n", res.ErrorPositions)

	// Privacy (LCC's T-privacy, paper ref. [24]): padding the encoding
	// with T random batches makes any coalition of ≤ T vehicles learn
	// nothing from its shares — encode the same data twice and the shares
	// differ, while decoding still returns the same exact outputs.
	priv, err := core.NewInference(core.InferenceConfig{
		NumVehicles: vehicles,
		NumBatches:  batches,
		PrivacyT:    2,
		FracBits:    9,
		Seed:        1,
	}, degree)
	if err != nil {
		log.Fatal(err)
	}
	sharesA, err := priv.Shares(data)
	if err != nil {
		log.Fatal(err)
	}
	sharesB, err := priv.Shares(data)
	if err != nil {
		log.Fatal(err)
	}
	resPriv, err := priv.Run(w, b, act, data, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith privacy T=2: recover threshold grows to K=%d (budget E=%d)\n",
		priv.RecoverThreshold(), priv.MaxMalicious())
	fmt.Printf("  same data, two encodings — vehicle 0's first share word: %v vs %v (masked)\n",
		sharesA[0][0], sharesB[0][0])
	fmt.Printf("  decoded batch 0 still exact: %+.6f\n", resPriv.BatchOutputs[0])
}

func keys(m map[int]field.Element) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
