// Distributed deployment: the fusion centre and the vehicles as separate
// processes (here goroutines) talking the wire protocol over real TCP.
//
// Twenty vehicles connect to the fusion centre on a loopback port; four of
// them are malicious. Each side holds only its own state — vehicles never
// see each other's data, the fusion centre never sees any dataset — and
// the verification channel identifies the liars across the network.
//
// Run: go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/node"
	"repro/internal/parallel"
	"repro/internal/traffic"
	"repro/internal/transport"
)

func main() {
	const (
		vehicles = 20
		rounds   = 8
	)

	ds, err := traffic.Generate(traffic.GenConfig{Rows: 2000, Seed: 30})
	if err != nil {
		log.Fatal(err)
	}
	train, test, err := ds.Split(0.8, 31)
	if err != nil {
		log.Fatal(err)
	}
	refDS, err := traffic.Generate(traffic.GenConfig{Rows: 8 * 16, Seed: 32})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := train.PartitionIID(vehicles, 33)
	if err != nil {
		log.Fatal(err)
	}
	exact := approx.SymmetricSigmoid()
	p, err := approx.LeastSquares{SamplePoints: 21}.Fit(exact.F, -2, 2, 1)
	if err != nil {
		log.Fatal(err)
	}

	server, err := node.NewServer(node.ServerConfig{
		FL: fl.Config{
			InputSize: traffic.NumFeatures, LocalEpochs: 5, LocalRate: 0.2,
			DistillEpochs: 30, DistillRate: 0.2, ServerStep: 0.5, Seed: 34,
		},
		Scheme: core.SchemeConfig{
			NumVehicles: vehicles, NumBatches: 8, Degree: 1, Seed: 35,
		},
		RefX:             refDS.Features(),
		ActivationCoeffs: p,
		Rounds:           rounds,
	})
	if err != nil {
		log.Fatal(err)
	}

	l, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	fmt.Printf("fusion centre listening on %s\n", l.Addr())

	// Vehicles 3, 7, 11, 15 lie about everything. One goroutine per
	// vehicle via parallel.Group, so a vehicle panic surfaces in main
	// instead of killing the process from an anonymous goroutine.
	malicious := map[int]bool{3: true, 7: true, 11: true, 15: true}
	var vg parallel.Group
	for i := 0; i < vehicles; i++ {
		id := i
		vg.Go(func() error {
			conn, err := transport.DialTCP(l.Addr())
			if err != nil {
				log.Printf("vehicle %d: %v", id, err)
				return nil
			}
			defer conn.Close()
			cfg := node.ClientConfig{VehicleID: id, Data: parts[id], Seed: int64(100 + id)}
			if malicious[id] {
				cfg.Corrupt = adversary.ConstantLie{Value: 5}
			}
			if err := node.RunVehicle(conn, cfg); err != nil {
				log.Printf("vehicle %d: %v", id, err)
			}
			return nil
		})
	}

	conns := make([]transport.Conn, 0, vehicles)
	for len(conns) < vehicles {
		c, err := l.Accept()
		if err != nil {
			log.Fatal(err)
		}
		conns = append(conns, c)
	}
	report, err := server.Run(conns)
	if err != nil {
		log.Fatal(err)
	}
	if err := vg.Wait(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("completed %d rounds over TCP\n", report.Rounds)
	fmt.Printf("verification channel flagged vehicles: %v (planted: 3 7 11 15)\n", report.SuspectedMalicious)
	correct := 0
	for i, s := range test.Samples {
		pi, err := server.Shared().EstimateClamped(s.X)
		if err != nil {
			log.Fatal(err)
		}
		if (pi > 0.5) == (test.Samples[i].Y == 1) {
			correct++
		}
	}
	fmt.Printf("final shared-model test accuracy: %.3f\n", float64(correct)/float64(test.Len()))
}
