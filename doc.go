// Package repro is the root of the L-CoFL reproduction: a from-scratch Go
// implementation of "Lagrange Coded Federated Learning (L-CoFL) Model for
// Internet of Vehicles" (ICDCS 2022).
//
// The library lives under internal/ (see DESIGN.md for the system
// inventory), runnable examples under examples/, and the experiment CLI
// under cmd/lcofl. The root package only anchors the module and the
// benchmark harness (bench_test.go), which regenerates every figure of
// the paper's evaluation as a testing.B benchmark.
package repro
